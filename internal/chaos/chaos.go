// Package chaos is the deterministic fault-injection and differential
// conformance harness. A Plan is a list of fault events pinned to virtual
// times — rail deaths and recoveries, link degradation, stalled send
// engines, delayed completions, periodic chunk loss — armed against a
// freshly built world before any rank runs. Because everything keys off
// the simulation's virtual clock, a given (seed, plan, policy) triple
// replays bit-identically: same trace, same digests, same outcome.
//
// The companion oracle (oracle.go) runs one seeded workload under every
// scheduling policy crossed with a set of fault plans and asserts that the
// user-visible results — payload bytes, matching order, completion
// monotonicity — are identical across policies, faulty or not.
package chaos

import (
	"fmt"
	"math/rand"

	"ib12x/internal/adi"
	"ib12x/internal/hca"
	"ib12x/internal/sim"
)

// EventKind classifies a fault event.
type EventKind int

// Fault event kinds.
const (
	// RailDown kills rail index Rail on every inter-node connection
	// touching Node: both QP halves drop, in-flight WRs flush, and the
	// scheduling policies see the rail vanish from the health mask.
	RailDown EventKind = iota
	// RailUp recovers a previously killed rail.
	RailUp
	// LinkDegrade multiplies the port's TX/RX rate by Factor and adds Pad
	// one-way latency per chunk (a flaky cable, not a dead one).
	LinkDegrade
	// LinkRestore undoes LinkDegrade.
	LinkRestore
	// SendStall freezes the port's send-engine stage for Pad: WQEs arriving
	// during the stall wait it out before an engine is picked.
	SendStall
	// CompletionDelay postpones RC acknowledgment generation at the port by
	// Pad, delaying sender-side completions without touching data delivery.
	CompletionDelay
	// ChunkLossEveryN drops every N-th chunk crossing the port (the legacy
	// FaultEvery knob); each loss pays the RC retransmit timeout.
	ChunkLossEveryN
	// Payload corruption (DESIGN.md §17). Each corrupts every N-th payload
	// descriptor posted through the targeted ports (N = 0 disarms; the byte,
	// bit, and mangle draws are seeded by Seed, so replays are bit-identical).
	// Control traffic never consults the plan — VCRC-protected wire headers —
	// which keeps every plan liveness-safe by construction.
	//
	// BitFlipEveryN XORs one seeded bit of one seeded payload byte.
	BitFlipEveryN
	// HeaderCorrupt mangles the wire header of an eager envelope: the
	// receiver mis-reads the payload length (seeded truncation). Matching
	// fields stay intact, so the message still matches and completes.
	HeaderCorrupt
	// RingTornWrite delivers an RDMA eager ring slot whose doorbell and
	// payload are momentarily inconsistent: with integrity armed the consume
	// guard re-polls until the slot settles; disarmed receivers read the
	// stale tail.
	RingTornWrite
	// TrunkDegrade throttles one fault plane of a routed fabric (spine
	// plane of a three-tier tree, global-link index of a dragonfly; Port
	// carries the plane index) to Factor × its built rate. Booked backlog
	// keeps its departure times; adaptive routing sees the new rate at
	// the next selection. No-op on flat and legacy fabrics.
	TrunkDegrade
	// TrunkRestore returns the plane to its built rate.
	TrunkRestore
)

func (k EventKind) String() string {
	switch k {
	case RailDown:
		return "RAIL_DOWN"
	case RailUp:
		return "RAIL_UP"
	case LinkDegrade:
		return "LINK_DEGRADE"
	case LinkRestore:
		return "LINK_RESTORE"
	case SendStall:
		return "SEND_STALL"
	case CompletionDelay:
		return "COMPLETION_DELAY"
	case ChunkLossEveryN:
		return "CHUNK_LOSS_EVERY_N"
	case BitFlipEveryN:
		return "BIT_FLIP_EVERY_N"
	case HeaderCorrupt:
		return "HEADER_CORRUPT"
	case RingTornWrite:
		return "RING_TORN_WRITE"
	case TrunkDegrade:
		return "TRUNK_DEGRADE"
	case TrunkRestore:
		return "TRUNK_RESTORE"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one scheduled fault. Node and Port select targets; -1 means
// every node (or every port of the selected nodes). Rail applies to
// RailDown/RailUp, N to ChunkLossEveryN, Factor and Pad to the rest.
type Event struct {
	At   sim.Time
	Kind EventKind
	Node int // target node, -1 = all
	Port int // target port within node, -1 = all (rail events ignore it)
	Rail int // rail index for RailDown/RailUp

	N      int64    // ChunkLossEveryN / corruption period (0 disarms)
	Factor float64  // LinkDegrade rate multiplier (0 < Factor <= 1)
	Pad    sim.Time // added latency / stall length / ack delay
	Seed   uint64   // corruption events: byte/bit/mangle draw seed
}

// Plan is a named, ordered fault schedule. The zero value (and NoFaults)
// injects nothing; arming it leaves the fault-free fast paths untouched.
type Plan struct {
	Name   string
	Events []Event
}

// hasRailEvents reports whether the plan can kill a rail, which requires
// in-flight WR tracking on every endpoint.
func (p *Plan) hasRailEvents() bool {
	for _, ev := range p.Events {
		if ev.Kind == RailDown || ev.Kind == RailUp {
			return true
		}
	}
	return false
}

// Arm schedules the plan against a freshly built world. Events at or before
// the current virtual time apply immediately (so t=0 faults precede every
// rank's first instruction); later ones are posted on the engine and fire
// off the virtual clock, which keeps replays bit-identical. Arm must run
// before the engine does.
func (p *Plan) Arm(eng *sim.Engine, w *adi.World) {
	if p == nil {
		return
	}
	if p.hasRailEvents() {
		w.EnableRailRecovery()
	}
	for _, ev := range p.Events {
		if ev.At <= eng.Now() {
			p.apply(eng, w, ev)
			continue
		}
		ev := ev
		eng.Post(ev.At, func() { p.apply(eng, w, ev) })
	}
}

// apply executes one fault event against the world.
func (p *Plan) apply(eng *sim.Engine, w *adi.World, ev Event) {
	switch ev.Kind {
	case RailDown, RailUp:
		up := ev.Kind == RailUp
		if ev.Node >= 0 {
			w.SetRail(ev.Node, ev.Rail, up)
			return
		}
		for n := range w.Cluster.Nodes {
			w.SetRail(n, ev.Rail, up)
		}
	case LinkDegrade:
		p.eachPort(w, ev, func(port *hca.Port) { port.DegradeLink(ev.Factor, ev.Pad) })
	case LinkRestore:
		p.eachPort(w, ev, func(port *hca.Port) { port.RestoreLink() })
	case SendStall:
		until := eng.Now() + ev.Pad
		p.eachPort(w, ev, func(port *hca.Port) {
			if port.StallUntil < until {
				port.StallUntil = until
			}
		})
	case CompletionDelay:
		p.eachPort(w, ev, func(port *hca.Port) { port.AckDelay = ev.Pad })
	case ChunkLossEveryN:
		p.eachPort(w, ev, func(port *hca.Port) { port.ErrorEvery = ev.N })
	case BitFlipEveryN:
		p.eachPort(w, ev, func(port *hca.Port) { port.FlipEvery = ev.N; port.CorruptSeed = ev.Seed })
	case HeaderCorrupt:
		p.eachPort(w, ev, func(port *hca.Port) { port.HdrEvery = ev.N; port.CorruptSeed = ev.Seed })
	case RingTornWrite:
		p.eachPort(w, ev, func(port *hca.Port) { port.TornEvery = ev.N; port.CorruptSeed = ev.Seed })
	case TrunkDegrade:
		w.Cluster.Net.DegradePlane(ev.Port, ev.Factor)
	case TrunkRestore:
		w.Cluster.Net.RestorePlane(ev.Port)
	default:
		panic(fmt.Sprintf("chaos: unknown event kind %v", ev.Kind))
	}
}

// eachPort visits the ports the event targets.
func (p *Plan) eachPort(w *adi.World, ev Event, fn func(*hca.Port)) {
	for n, node := range w.Cluster.Nodes {
		if ev.Node >= 0 && ev.Node != n {
			continue
		}
		for pi, port := range node.Ports() {
			if ev.Port >= 0 && ev.Port != pi {
				continue
			}
			fn(port)
		}
	}
}

// ---- named plans ----

// NoFaults is the identity plan: a healthy fabric.
func NoFaults() *Plan { return &Plan{Name: "no-faults"} }

// LegacyEveryN expresses the historical FaultEvery knob as a plan: every
// N-th chunk on every port is lost and retransmitted after the RC timeout.
func LegacyEveryN(n int64) *Plan {
	return &Plan{
		Name:   fmt.Sprintf("legacy-every-%d", n),
		Events: []Event{{At: 0, Kind: ChunkLossEveryN, Node: -1, Port: -1, N: n}},
	}
}

// RailDeath kills rail on node at the given time, permanently. In-flight
// stripes on the rail are flushed and retransmitted on survivors; the
// policies reroute around the hole for the rest of the run.
func RailDeath(at sim.Time, node, rail int) *Plan {
	return &Plan{
		Name:   fmt.Sprintf("rail-death-n%d-r%d", node, rail),
		Events: []Event{{At: at, Kind: RailDown, Node: node, Rail: rail}},
	}
}

// RailFlap kills a rail at down and revives it at up — a mid-run failure
// with recovery, exercising rebind in both directions.
func RailFlap(down, up sim.Time, node, rail int) *Plan {
	return &Plan{
		Name: fmt.Sprintf("rail-flap-n%d-r%d", node, rail),
		Events: []Event{
			{At: down, Kind: RailDown, Node: node, Rail: rail},
			{At: up, Kind: RailUp, Node: node, Rail: rail},
		},
	}
}

// StalledEngine freezes the send engines of one port (or all, port = -1)
// for dur starting at at: a QP stall without any loss.
func StalledEngine(at, dur sim.Time, node, port int) *Plan {
	return &Plan{
		Name:   fmt.Sprintf("stalled-engine-n%d-p%d", node, port),
		Events: []Event{{At: at, Kind: SendStall, Node: node, Port: port, Pad: dur}},
	}
}

// DegradedLink throttles a port to factor of its raw rate and pads each
// chunk with extra one-way latency between from and until.
func DegradedLink(from, until sim.Time, node, port int, factor float64, pad sim.Time) *Plan {
	return &Plan{
		Name: fmt.Sprintf("degraded-link-n%d-p%d", node, port),
		Events: []Event{
			{At: from, Kind: LinkDegrade, Node: node, Port: port, Factor: factor, Pad: pad},
			{At: until, Kind: LinkRestore, Node: node, Port: port},
		},
	}
}

// DegradedTrunk throttles one fault plane of a routed fabric (spine plane
// / global-link index) to factor of its built rate between from and until.
// On flat and legacy fabrics the plan arms but changes nothing.
func DegradedTrunk(from, until sim.Time, plane int, factor float64) *Plan {
	return &Plan{
		Name: fmt.Sprintf("degraded-trunk-plane%d", plane),
		Events: []Event{
			{At: from, Kind: TrunkDegrade, Node: -1, Port: plane, Factor: factor},
			{At: until, Kind: TrunkRestore, Node: -1, Port: plane},
		},
	}
}

// DelayedCompletions postpones ack generation at a port by d between from
// and until: data lands on time, senders learn about it late.
func DelayedCompletions(from, until sim.Time, node, port int, d sim.Time) *Plan {
	return &Plan{
		Name: fmt.Sprintf("delayed-completions-n%d-p%d", node, port),
		Events: []Event{
			{At: from, Kind: CompletionDelay, Node: node, Port: port, Pad: d},
			{At: until, Kind: CompletionDelay, Node: node, Port: port, Pad: 0},
		},
	}
}

// BitFlipPlan corrupts one seeded payload bit on every n-th payload
// descriptor crossing any port of node (node = -1 for all) from `at` on.
// Pair with a second event (N = 0) to disarm mid-run.
func BitFlipPlan(at sim.Time, node int, n int64, seed uint64) *Plan {
	return &Plan{
		Name:   fmt.Sprintf("bit-flip-n%d-every-%d", node, n),
		Events: []Event{{At: at, Kind: BitFlipEveryN, Node: node, Port: -1, N: n, Seed: seed}},
	}
}

// HeaderCorruptPlan mangles the wire header of every n-th eager envelope
// crossing any port of node (node = -1 for all) from `at` on.
func HeaderCorruptPlan(at sim.Time, node int, n int64, seed uint64) *Plan {
	return &Plan{
		Name:   fmt.Sprintf("hdr-corrupt-n%d-every-%d", node, n),
		Events: []Event{{At: at, Kind: HeaderCorrupt, Node: node, Port: -1, N: n, Seed: seed}},
	}
}

// TornWritePlan delivers every n-th ring eager slot torn (doorbell ahead of
// payload) on any port of node (node = -1 for all) from `at` on. Only runs
// with EagerProto = EagerRDMAWrite have torn candidates; other payload
// descriptors are unaffected.
func TornWritePlan(at sim.Time, node int, n int64, seed uint64) *Plan {
	return &Plan{
		Name:   fmt.Sprintf("torn-write-n%d-every-%d", node, n),
		Events: []Event{{At: at, Kind: RingTornWrite, Node: node, Port: -1, N: n, Seed: seed}},
	}
}

// Merge concatenates plans into one composite schedule.
func Merge(name string, plans ...*Plan) *Plan {
	out := &Plan{Name: name}
	for _, p := range plans {
		if p != nil {
			out.Events = append(out.Events, p.Events...)
		}
	}
	return out
}

// Generate builds a seeded random plan over the given cluster shape and
// horizon. It is liveness-safe by construction: rail 0 is never killed (so
// every connection keeps at least one live rail) and every RailDown is
// paired with a RailUp before the horizon. The same seed always yields the
// same plan.
func Generate(seed int64, horizon sim.Time, nodes, rails, ports int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Name: fmt.Sprintf("generated-%d", seed)}
	at := func(lo, hi float64) sim.Time {
		return sim.Time(float64(horizon) * (lo + (hi-lo)*rng.Float64()))
	}

	// Rail flaps on rails >= 1 only.
	if rails > 1 {
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			rail := 1 + rng.Intn(rails-1)
			node := rng.Intn(nodes)
			down := at(0.05, 0.55)
			up := down + at(0.10, 0.35)
			if up >= horizon {
				up = horizon - 1
			}
			p.Events = append(p.Events,
				Event{At: down, Kind: RailDown, Node: node, Rail: rail},
				Event{At: up, Kind: RailUp, Node: node, Rail: rail})
		}
	}
	// One degraded-link window.
	if rng.Intn(2) == 0 {
		node, port := rng.Intn(nodes), rng.Intn(ports)
		from := at(0.0, 0.5)
		p.Events = append(p.Events,
			Event{At: from, Kind: LinkDegrade, Node: node, Port: port,
				Factor: 0.25 + 0.5*rng.Float64(), Pad: sim.Time(rng.Intn(2000))},
			Event{At: from + at(0.05, 0.3), Kind: LinkRestore, Node: node, Port: port})
	}
	// One send-engine stall.
	if rng.Intn(2) == 0 {
		p.Events = append(p.Events, Event{
			At: at(0.1, 0.7), Kind: SendStall,
			Node: rng.Intn(nodes), Port: -1, Pad: at(0.02, 0.08),
		})
	}
	// Maybe background chunk loss.
	if rng.Intn(3) == 0 {
		p.Events = append(p.Events, Event{
			At: 0, Kind: ChunkLossEveryN, Node: -1, Port: -1,
			N: int64(64 + rng.Intn(192)),
		})
	}
	return p
}

// GenerateCorrupting extends Generate's seeded schedule with payload
// corruption: a bit-flip regime, maybe a header-mangle regime, and maybe a
// torn-write regime (harmless unless the run uses the RDMA eager ring). The
// base schedule for a given seed is exactly Generate's — the corruption
// draws come after every base draw — so the two generators stay comparable.
// Like Generate, the result is liveness-safe: corruption only touches
// payload descriptors, never the control plane, and the integrity layer's
// NACK retransmissions are corruption-exempt.
func GenerateCorrupting(seed int64, horizon sim.Time, nodes, rails, ports int) *Plan {
	p := Generate(seed, horizon, nodes, rails, ports)
	p.Name = fmt.Sprintf("generated-corrupting-%d", seed)
	rng := rand.New(rand.NewSource(seed ^ 0x1CBC))
	at := func(lo, hi float64) sim.Time {
		return sim.Time(float64(horizon) * (lo + (hi-lo)*rng.Float64()))
	}
	p.Events = append(p.Events, Event{
		At: at(0.0, 0.2), Kind: BitFlipEveryN, Node: rng.Intn(nodes), Port: -1,
		N: int64(3 + rng.Intn(13)), Seed: rng.Uint64(),
	})
	if rng.Intn(2) == 0 {
		p.Events = append(p.Events, Event{
			At: at(0.1, 0.5), Kind: HeaderCorrupt, Node: -1, Port: -1,
			N: int64(5 + rng.Intn(11)), Seed: rng.Uint64(),
		})
	}
	if rng.Intn(2) == 0 {
		p.Events = append(p.Events, Event{
			At: 0, Kind: RingTornWrite, Node: -1, Port: -1,
			N: int64(2 + rng.Intn(6)), Seed: rng.Uint64(),
		})
	}
	return p
}
