package chaos

import (
	"testing"

	"ib12x/internal/adi"
	"ib12x/internal/core"
	"ib12x/internal/harness"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
	"ib12x/internal/trace"
)

// TestSelfHealingDifferentialOracle reruns the full policy x plan matrix with
// the reliability layer armed. Self-healing may only shrink the damage, never
// change the answer: every cell must reproduce the fault-free user-visible
// digest with zero violations, rail deaths must be quarantined on the
// endpoints' own evidence (SetRail no longer touches any mask), and the flap
// plan must see the revived rail reintegrated by a probe — no operator
// involvement anywhere.
func TestSelfHealingDifferentialOracle(t *testing.T) {
	base, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: allPolicies[0]})
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range faultPlans() {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			results, err := harness.MapAll(allPolicies, func(kind core.Kind) (*RunResult, error) {
				return RunConformance(OracleConfig{
					Seed:        oracleSeed,
					Policy:      kind,
					Plan:        plan,
					Reliability: &adi.ReliabilityConfig{Seed: oracleSeed},
				})
			})
			if err != nil {
				t.Fatalf("under %s: %v", plan.Name, err)
			}
			var quarantines, reintegrations int64
			for i, res := range results {
				for _, v := range res.Violations {
					t.Errorf("%v under %s: %s", allPolicies[i], plan.Name, v)
				}
				if res.Digest != base.Digest {
					t.Errorf("self-healing changed the answer under %s: %s=%#x vs fault-free %#x",
						plan.Name, res.Policy, res.Digest, base.Digest)
				}
				quarantines += res.RailQuarantines
				reintegrations += res.RailReintegrations
			}
			switch plan.Name {
			case "rail-death-n1-r2":
				if quarantines == 0 {
					t.Error("permanent rail death never quarantined by any endpoint")
				}
			case "rail-flap-n0-r1":
				if quarantines == 0 || reintegrations == 0 {
					t.Errorf("flap: quarantines=%d reintegrations=%d, want both > 0",
						quarantines, reintegrations)
				}
			}
		})
	}
}

// healthTimeline runs a seeded ping-pong workload under a rail flap with the
// reliability layer armed and returns the recorded health-transition events.
func healthTimeline(t *testing.T, seed int64) []trace.Event {
	t.Helper()
	rec := trace.NewRecorder(1 << 16)
	cfg := mpi.Config{
		Nodes:      2,
		QPsPerPort: 2,
		Policy:     core.RoundRobin,
		Trace:      rec,
		Chaos:      RailFlap(80*sim.Microsecond, 400*sim.Microsecond, 1, 1),
		Reliability: &adi.ReliabilityConfig{
			Seed:          seed,
			Deadline:      60 * sim.Microsecond,
			CheckInterval: 15 * sim.Microsecond,
			RetryBase:     2 * sim.Microsecond,
			ProbeBase:     10 * sim.Microsecond,
			ProbeMax:      40 * sim.Microsecond,
		},
		Deadline: 50 * sim.Millisecond,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		buf := make([]byte, 4<<10)
		for i := 0; i < 120; i++ {
			if c.Rank() == 0 {
				c.Send(1, 5, buf)
			} else {
				c.Recv(0, 5, buf)
			}
			c.Compute(3 * sim.Microsecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []trace.Event
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindRailSuspect, trace.KindRailQuarantine, trace.KindRailProbe, trace.KindRailReintegrate:
			out = append(out, e)
		}
	}
	return out
}

// TestHealthTimelineReplay pins the reliability layer's determinism: two runs
// with the same seed must log the exact same health-transition timeline —
// same virtual times, same kinds, same ranks, same rails.
func TestHealthTimelineReplay(t *testing.T) {
	a := healthTimeline(t, 11)
	b := healthTimeline(t, 11)
	if len(a) == 0 {
		t.Fatal("rail flap produced no health transitions; the layer is not engaging")
	}
	if len(a) != len(b) {
		t.Fatalf("replay event count diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed shifts probe/backoff jitter, so the timeline moves.
	c := healthTimeline(t, 12)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seed 11 and 12 produced identical timelines; jitter is not seeded")
	}
}

// TestFalseSuspectRecovers forces a false positive: a long send-engine stall
// with an aggressively short deadline trips suspect -> quarantine even though
// the rail is physically fine. The layer must recover by itself (the first
// probe completes once the stall lifts), must not retransmit anything (no WR
// ever flushed), and must leave the user-visible answer untouched.
func TestFalseSuspectRecovers(t *testing.T) {
	base, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConformance(OracleConfig{
		Seed:   oracleSeed,
		Policy: core.EvenStriping,
		Plan:   StalledEngine(150*sim.Microsecond, 200*sim.Microsecond, 0, 0),
		Reliability: &adi.ReliabilityConfig{
			Seed:          oracleSeed,
			Deadline:      30 * sim.Microsecond,
			DeadlineScale: 1,
			CheckInterval: 10 * sim.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Digest != base.Digest {
		t.Errorf("false quarantine changed the answer: %#x vs %#x", res.Digest, base.Digest)
	}
	if res.RailSuspects == 0 || res.RailQuarantines == 0 {
		t.Errorf("stall never tripped the deadline: suspects=%d quarantines=%d",
			res.RailSuspects, res.RailQuarantines)
	}
	if res.RailReintegrations == 0 {
		t.Error("falsely quarantined rail never reintegrated")
	}
	if res.RailRetransmits != 0 {
		t.Errorf("false quarantine retransmitted %d WRs; nothing was ever flushed", res.RailRetransmits)
	}
	if res.Health.Get("reintegrations") != res.RailReintegrations {
		t.Error("Health counter block disagrees with the summed stats")
	}
}

// TestCorruptionFalseSuspectRecovers mirrors the integrity suite's
// corruption-strike arc through the full health state machine: a transient
// flipper burst NACKs enough payloads to strike its rails into suspect and
// on to quarantine, the burst disarms, and the first probe — probes are
// control traffic, exempt from payload corruption — finds the rail
// physically fine and reintegrates it. The answer never moves: every NACKed
// payload was retransmitted clean by the HCA before the strike was even
// booked.
func TestCorruptionFalseSuspectRecovers(t *testing.T) {
	base, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	transient := Merge("transient-flipper",
		BitFlipPlan(20*sim.Microsecond, -1, 3, 0x5EED),
		&Plan{Events: []Event{{At: 500 * sim.Microsecond, Kind: BitFlipEveryN, Node: -1, Port: -1, N: 0}}})
	res, err := RunConformance(OracleConfig{
		Seed: oracleSeed, Policy: core.RoundRobin, Plan: transient,
		Integrity: adi.IntegrityVerify,
		// One strike quarantines: the arc under test is a single flip driving
		// suspect -> quarantine -> probe -> reintegrate end to end.
		Reliability: &adi.ReliabilityConfig{Seed: oracleSeed, SuspectAfter: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Digest != base.Digest {
		t.Errorf("corruption strikes changed the answer: %#x vs %#x", res.Digest, base.Digest)
	}
	if res.IntegrityNacks == 0 {
		t.Fatal("flipper burst never NACKed; injection not engaging")
	}
	if res.CorruptDeliveries != 0 {
		t.Errorf("verify mode delivered %d corrupt payloads", res.CorruptDeliveries)
	}
	if res.RailSuspects == 0 {
		t.Error("corruption strikes never turned a rail suspect")
	}
	if res.RailQuarantines == 0 {
		t.Error("repeated corruption strikes never quarantined a rail")
	}
	if res.RailReintegrations == 0 {
		t.Error("quarantined rail never reintegrated after the burst disarmed")
	}
}

// TestPersistentFlipperQuarantined pins the complementary arc: a rail
// population that never stops flipping keeps striking into quarantine, and
// however often the (corruption-exempt) probes reintegrate it, the answer
// still matches the fault-free baseline — integrity turns a corrupting
// fabric into a slow fabric, never a wrong one.
func TestPersistentFlipperQuarantined(t *testing.T) {
	base, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConformance(OracleConfig{
		Seed: oracleSeed, Policy: core.EvenStriping,
		Plan:        BitFlipPlan(10*sim.Microsecond, -1, 3, 0xBADF),
		Integrity:   adi.IntegrityVerify,
		Reliability: &adi.ReliabilityConfig{Seed: oracleSeed, SuspectAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Digest != base.Digest {
		t.Errorf("persistent flipper changed the answer: %#x vs %#x", res.Digest, base.Digest)
	}
	if res.RailQuarantines == 0 {
		t.Errorf("persistent flipper never quarantined a rail (nacks=%d suspects=%d)",
			res.IntegrityNacks, res.RailSuspects)
	}
	if res.IntegrityNacks < res.RailQuarantines {
		t.Errorf("quarantines (%d) outnumber NACKs (%d); strikes are being double-booked",
			res.RailQuarantines, res.IntegrityNacks)
	}
	if res.CorruptDeliveries != 0 {
		t.Errorf("verify mode delivered %d corrupt payloads", res.CorruptDeliveries)
	}
}
