package chaos

import (
	"fmt"
	"sort"

	"ib12x/internal/adi"
	"ib12x/internal/hca"
	"ib12x/internal/ib"
	"ib12x/internal/sim"
)

// ArmSharded schedules the plan against a world built over a shard group
// (adi.NewWorldSharded). Every fault event is decomposed into per-node
// sub-events posted on the owning node's shard, so no shard ever mutates
// another shard's hardware state:
//
//   - RailDown/RailUp become one SetRailHalf per node — each node flips only
//     its own QP halves and endpoint masks;
//   - port-scoped events (degrade, stall, ack delay, chunk loss) post to the
//     target ports' own nodes.
//
// Because the plan is static, the cross-shard reads the serial faults would
// require are precomputed instead: every QP that will fail gets its SetDown
// timeline (ib.SetDownSched — remote stages evaluate flushes from the
// descriptor's flushAfter stamp), and every port that will degrade gets its
// LatencyPad timeline (hca.PadSched — remote senders evaluate the pad from
// the schedule). Sub-events posted during setup carry setup-phase keys, so
// at any instant they order before runtime events exactly as the serial
// single event does. Arm must run before the group does.
func (p *Plan) ArmSharded(g *sim.Group, w *adi.World) {
	if p == nil {
		return
	}
	if p.hasRailEvents() {
		w.EnableRailRecovery()
	}
	p.installDownScheds(w)
	p.installPadScheds(w)
	nodes := len(w.Cluster.Nodes)
	for _, ev := range p.Events {
		ev := ev
		switch ev.Kind {
		case RailDown, RailUp:
			up := ev.Kind == RailUp
			for e := 0; e < nodes; e++ {
				e := e
				postShard(g, e, ev.At, func() {
					if ev.Node >= 0 {
						w.SetRailHalf(e, ev.Node, ev.Rail, up)
						return
					}
					for t := 0; t < len(w.Cluster.Nodes); t++ {
						w.SetRailHalf(e, t, ev.Rail, up)
					}
				})
			}
		case TrunkDegrade, TrunkRestore:
			// Fabric planes are shared by every shard, and all routed-graph
			// lane bookings are deferred to the window barrier where they
			// apply in serial posting-key order. The mutation defers the
			// same way — its setup-phase key slots it before runtime events
			// of the same instant, exactly where the serial apply sits. One
			// application only (shard 0), like the serial switch arm.
			ctx := g.Ctx(0)
			postShard(g, 0, ev.At, func() {
				ctx.Engine().DeferOrdered(func() {
					if ev.Kind == TrunkDegrade {
						w.Cluster.Net.DegradePlane(ev.Port, ev.Factor)
					} else {
						w.Cluster.Net.RestorePlane(ev.Port)
					}
				})
			})
		default:
			for n := 0; n < nodes; n++ {
				if ev.Node >= 0 && ev.Node != n {
					continue
				}
				n := n
				postShard(g, n, ev.At, func() { applyPorts(g, w, ev, n) })
			}
		}
	}
}

// postShard runs fn at time at on the node's shard: immediately when the
// instant has already passed (t=0 faults precede every rank's first
// instruction, as in the serial Arm), else as a posted event.
func postShard(g *sim.Group, node int, at sim.Time, fn func()) {
	ctx := g.Ctx(node)
	if at <= ctx.Now() {
		fn()
		return
	}
	ctx.Post(at, fn)
}

// applyPorts executes one port-scoped fault event against a single node.
func applyPorts(g *sim.Group, w *adi.World, ev Event, n int) {
	for pi, port := range w.Cluster.Nodes[n].Ports() {
		if ev.Port >= 0 && ev.Port != pi {
			continue
		}
		switch ev.Kind {
		case LinkDegrade:
			port.DegradeLink(ev.Factor, ev.Pad)
		case LinkRestore:
			port.RestoreLink()
		case SendStall:
			until := g.Ctx(n).Now() + ev.Pad
			if port.StallUntil < until {
				port.StallUntil = until
			}
		case CompletionDelay:
			port.AckDelay = ev.Pad
		case ChunkLossEveryN:
			port.ErrorEvery = ev.N
		case BitFlipEveryN:
			port.FlipEvery = ev.N
			port.CorruptSeed = ev.Seed
		case HeaderCorrupt:
			port.HdrEvery = ev.N
			port.CorruptSeed = ev.Seed
		case RingTornWrite:
			port.TornEvery = ev.N
			port.CorruptSeed = ev.Seed
		default:
			panic(fmt.Sprintf("chaos: unknown event kind %v", ev.Kind))
		}
	}
}

// installDownScheds precomputes each affected QP's SetDown timeline from the
// static plan. Replaying the rail events in time order with a per-QP down
// flag reproduces exactly the SetDown calls that will bump the QP's epoch
// (SetDown on an already-down QP is a no-op, so duplicate applications —
// Node=-1 events visit every pair twice, as the serial loop does — record
// one transition).
func (p *Plan) installDownScheds(w *adi.World) {
	evs := sortedByTime(p.Events)
	times := map[*ib.QP][]sim.Time{}
	isDown := map[*ib.QP]bool{}
	for _, ev := range evs {
		if ev.Kind != RailDown && ev.Kind != RailUp {
			continue
		}
		targets := []int{ev.Node}
		if ev.Node < 0 {
			targets = targets[:0]
			for n := range w.Cluster.Nodes {
				targets = append(targets, n)
			}
		}
		for _, t := range targets {
			ev := ev
			w.ForEachRailQP(t, ev.Rail, func(qp *ib.QP) {
				if ev.Kind == RailUp {
					isDown[qp] = false
					return
				}
				if !isDown[qp] {
					isDown[qp] = true
					times[qp] = append(times[qp], ev.At)
				}
			})
		}
	}
	for qp, ts := range times {
		qp.SetDownSched(ts)
	}
}

// installPadScheds precomputes each affected port's LatencyPad timeline so
// remote senders never read the mutable field across shards. padAt takes
// the last point at or before the query time, so same-instant transitions
// override in plan order, matching the serial last-write-wins.
func (p *Plan) installPadScheds(w *adi.World) {
	evs := sortedByTime(p.Events)
	pads := map[*hca.Port][]hca.PadPoint{}
	for _, ev := range evs {
		if ev.Kind != LinkDegrade && ev.Kind != LinkRestore {
			continue
		}
		for n, node := range w.Cluster.Nodes {
			if ev.Node >= 0 && ev.Node != n {
				continue
			}
			for pi, port := range node.Ports() {
				if ev.Port >= 0 && ev.Port != pi {
					continue
				}
				pad := sim.Time(0)
				if ev.Kind == LinkDegrade {
					pad = ev.Pad
				}
				pads[port] = append(pads[port], hca.PadPoint{At: ev.At, Pad: pad})
			}
		}
	}
	for port, pts := range pads {
		port.PadSched = pts
	}
}

// sortedByTime returns the events stably ordered by fire time — the order
// the serial engine would execute them in (ties keep plan order, matching
// the serial post sequence).
func sortedByTime(evs []Event) []Event {
	out := append([]Event(nil), evs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
