package chaos

import (
	"testing"

	"ib12x/internal/adi"
	"ib12x/internal/core"
	"ib12x/internal/harness"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

// TestDifferentialOracleRDMAEager runs the seeded workload with the
// RDMA-write eager channel across the full 6-policy x 6-fault-plan matrix
// and requires every cell's payload digest to be byte-identical to the
// send/recv baseline of the same plan. The ring moves every small message
// onto a different transport path — per-peer slot arrays, polling-set
// receive, header-cache-compressed wire headers, slot-credit flow control,
// send/recv fallback under exhaustion and rail death — but both channels
// share the per-connection sequence space, so the user-visible bytes must
// not move even while rails die, stall, and flap. Zero violations also pins
// World.BufLive()==0 after quiesce: RunConformance records any
// still-referenced payload block as a violation.
func TestDifferentialOracleRDMAEager(t *testing.T) {
	for _, plan := range faultPlans() {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			ref, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping, Plan: plan})
			if err != nil {
				t.Fatalf("send/recv baseline under %s: %v", plan.Name, err)
			}
			results, err := harness.MapAll(allPolicies, func(kind core.Kind) (*RunResult, error) {
				return RunConformance(OracleConfig{
					Seed: oracleSeed, Policy: kind, Plan: plan,
					EagerProto: adi.EagerRDMAWrite,
				})
			})
			if err != nil {
				t.Fatalf("ring matrix under %s: %v", plan.Name, err)
			}
			for i, res := range results {
				for _, v := range res.Violations {
					t.Errorf("ring %v under %s: %s", allPolicies[i], plan.Name, v)
				}
				if res.Digest != ref.Digest {
					t.Errorf("ring digest split under %s: send/recv=%#x vs ring %s=%#x",
						plan.Name, ref.Digest, res.Policy, res.Digest)
				}
			}
		})
	}
}

// TestRDMAEagerSerialParallelIdentical pins the harness contract for the
// ring channel: the same ring matrix row run on one worker and on many must
// yield bit-identical digests, trace digests, and elapsed virtual times
// cell by cell.
func TestRDMAEagerSerialParallelIdentical(t *testing.T) {
	plan := faultPlans()[5] // kitchen sink: the most event-heavy plan
	run := func(workers int) []*RunResult {
		res, err := harness.MapN(workers, allPolicies, func(kind core.Kind) (*RunResult, error) {
			return RunConformance(OracleConfig{
				Seed: oracleSeed, Policy: kind, Plan: plan,
				EagerProto: adi.EagerRDMAWrite,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Digest != p.Digest || s.TraceDigest != p.TraceDigest || s.Elapsed != p.Elapsed {
			t.Errorf("ring %s: serial/parallel diverge: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
				s.Policy, s.Digest, p.Digest, s.TraceDigest, p.TraceDigest, s.Elapsed, p.Elapsed)
		}
	}
}

// TestRDMAEagerShardedIdentical pins the sharded engine against the serial
// one under the ring channel: a bounded cut of the matrix (the two heaviest
// plans x two policies, 4-node fabric, one cell composing the ring with
// lane collectives) must be bit-identical — payload digest, trace digest,
// elapsed — at every shard count, with zero violations. Ring state (slot
// cursor, credits, header cache) lives on the sending endpoint's shard and
// slot returns arrive on the owner's shard, so the merge rule has nothing
// new to order — this leg proves it.
func TestRDMAEagerShardedIdentical(t *testing.T) {
	type cell struct {
		plan    *Plan
		policy  core.Kind
		collAlg mpi.CollAlg
	}
	plans := []*Plan{
		faultPlans()[5], // kitchen sink
		RailDeath(100*sim.Microsecond, 1, 2),
	}
	var cells []cell
	for _, plan := range plans {
		for _, kind := range []core.Kind{core.EPC, core.EvenStriping} {
			cells = append(cells, cell{plan, kind, mpi.CollStriped})
		}
	}
	// Lane-decomposed collectives over ring-carried eager residue.
	cells = append(cells, cell{plans[0], core.EPC, mpi.CollLane})
	matrix := func(shards int) []*RunResult {
		t.Helper()
		res, err := harness.Map(cells, func(c cell) (*RunResult, error) {
			return RunConformance(OracleConfig{
				Seed: oracleSeed, Policy: c.policy, Plan: c.plan,
				Nodes: 4, Shards: shards,
				EagerProto: adi.EagerRDMAWrite,
				CollAlg:    c.collAlg,
			})
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res
	}
	serial := matrix(0)
	for _, shards := range []int{1, 2, 4} {
		sharded := matrix(shards)
		for i, res := range sharded {
			ref := serial[i]
			for _, v := range res.Violations {
				t.Errorf("shards=%d ring %v under %s: %s", shards, cells[i].policy, cells[i].plan.Name, v)
			}
			if res.Digest != ref.Digest || res.TraceDigest != ref.TraceDigest || res.Elapsed != ref.Elapsed {
				t.Errorf("shards=%d ring %v under %s diverged from serial: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
					shards, cells[i].policy, cells[i].plan.Name,
					res.Digest, ref.Digest, res.TraceDigest, ref.TraceDigest, res.Elapsed, ref.Elapsed)
			}
		}
	}
}
