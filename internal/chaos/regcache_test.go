package chaos

import (
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/harness"
	"ib12x/internal/regcache"
)

// regCacheConfig sizes the cache small enough that the oracle workload's
// rendezvous and one-sided phases churn it: a 256 KB / 8-entry budget forces
// real evictions under the seeded buffer mix, so the matrix exercises miss,
// hit, coalesce and evict paths rather than an always-warm cache.
func regCacheConfig() *regcache.Config {
	return &regcache.Config{CapacityBytes: 256 << 10, CapacityEntries: 8}
}

// TestDifferentialOracleRegCache runs the policy x fault-plan matrix with the
// pin-down registration cache armed. The cache charges virtual time only, so
// the user-visible payload digest must stay identical across every cell AND
// equal to the cache-off baseline; the invariant set (no leaks, no deadlock,
// payload intact) must stay clean while the cache is actually working.
func TestDifferentialOracleRegCache(t *testing.T) {
	plans := faultPlans()
	// Every plan, every policy: the full matrix, with the cache-off baseline
	// digest computed once per plan from the first policy.
	for _, plan := range plans {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			baseline, err := RunConformance(OracleConfig{
				Seed: oracleSeed, Policy: allPolicies[0], Plan: plan,
			})
			if err != nil {
				t.Fatalf("baseline under %s: %v", plan.Name, err)
			}
			results, err := harness.MapAll(allPolicies, func(kind core.Kind) (*RunResult, error) {
				return RunConformance(OracleConfig{
					Seed: oracleSeed, Policy: kind, Plan: plan, RegCache: regCacheConfig(),
				})
			})
			if err != nil {
				t.Fatalf("under %s: %v", plan.Name, err)
			}
			for i, res := range results {
				for _, v := range res.Violations {
					t.Errorf("%v under %s: %s", allPolicies[i], plan.Name, v)
				}
				if res.Digest != baseline.Digest {
					t.Errorf("regcache changed payload digest under %s/%s: %#x vs baseline %#x",
						plan.Name, res.Policy, res.Digest, baseline.Digest)
				}
				if res.RegMisses == 0 || res.RegHits == 0 {
					t.Errorf("%s/%s: cache not exercised (hits=%d misses=%d)",
						plan.Name, res.Policy, res.RegHits, res.RegMisses)
				}
			}
		})
	}
}

// TestRegCacheOracleEvicts pins that the chosen capacity really forces
// evictions (otherwise the matrix above only tests the warm path) and that
// the registration charge moves the virtual clock.
func TestRegCacheOracleEvicts(t *testing.T) {
	base, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping, Plan: NoFaults()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConformance(OracleConfig{
		Seed: oracleSeed, Policy: core.EvenStriping, Plan: NoFaults(), RegCache: regCacheConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RegEvictions == 0 {
		t.Errorf("no evictions under the 256KB/8-entry budget (misses=%d): matrix is warm-only", res.RegMisses)
	}
	if res.RegPinnedPeak <= 0 || res.RegPinnedPeak > 256<<10 {
		t.Errorf("pinned high-water %d outside (0, 256KB]", res.RegPinnedPeak)
	}
	if res.Elapsed <= base.Elapsed {
		t.Errorf("registration charges did not slow the run: %v (cached) vs %v (free)", res.Elapsed, base.Elapsed)
	}
	if res.RegCacheStats == nil {
		t.Fatal("RegCacheStats not populated")
	}
}

// TestRegCacheConformanceSerialParallelIdentical extends the harness
// determinism contract to the cache-armed matrix: one worker and many
// workers must agree on digest, trace digest, elapsed time, and the cache
// tallies themselves, cell by cell. Same-seed reruns are covered too, since
// the serial pass IS a rerun of the parallel pass's cells.
func TestRegCacheConformanceSerialParallelIdentical(t *testing.T) {
	plan := faultPlans()[5] // kitchen sink: the most event-heavy plan
	run := func(workers int) []*RunResult {
		res, err := harness.MapN(workers, allPolicies, func(kind core.Kind) (*RunResult, error) {
			return RunConformance(OracleConfig{
				Seed: oracleSeed, Policy: kind, Plan: plan, RegCache: regCacheConfig(),
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Digest != p.Digest || s.TraceDigest != p.TraceDigest || s.Elapsed != p.Elapsed {
			t.Errorf("%s: serial/parallel diverge: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
				s.Policy, s.Digest, p.Digest, s.TraceDigest, p.TraceDigest, s.Elapsed, p.Elapsed)
		}
		if s.RegHits != p.RegHits || s.RegMisses != p.RegMisses ||
			s.RegEvictions != p.RegEvictions || s.RegPinnedPeak != p.RegPinnedPeak {
			t.Errorf("%s: cache tallies diverge: %d/%d hits %d/%d misses %d/%d evictions %d/%d peak",
				s.Policy, s.RegHits, p.RegHits, s.RegMisses, p.RegMisses,
				s.RegEvictions, p.RegEvictions, s.RegPinnedPeak, p.RegPinnedPeak)
		}
	}
}
