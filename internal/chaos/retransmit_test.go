package chaos

import (
	"bytes"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/model"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

// TestRetransmitHoldsPayloadReference kills a rail while striped
// rendezvous transfers are in flight and checks the zero-copy ownership
// contract end to end: the retransmitted stripes must still reference
// live payload bytes (the receiver sees an uncorrupted message), the
// rerouting path must actually fire, and — after quiesce — every
// refcounted view the transfers wrapped must have been released.
func TestRetransmitHoldsPayloadReference(t *testing.T) {
	n := model.Default().RendezvousThreshold * 16
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	const rounds = 4
	var bad int
	rep, err := mpi.Run(mpi.Config{
		Nodes:      2,
		QPsPerPort: 4,
		Policy:     core.EvenStriping,
		// Kill sender-side rail 1 while the first transfers are striped
		// across all four rails: the in-flight WRs flush and reroute.
		Chaos: RailDeath(20*sim.Microsecond, 0, 1),
	}, func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			for r := 0; r < rounds; r++ {
				c.Send(1, r, payload)
			}
		case 1:
			buf := make([]byte, n)
			for r := 0; r < rounds; r++ {
				for i := range buf {
					buf[i] = 0
				}
				c.Recv(0, r, buf)
				if !bytes.Equal(buf, payload) {
					bad++
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("%d of %d messages corrupted after rail-death retransmission", bad, rounds)
	}
	var retrans int64
	for _, st := range rep.RankStats {
		retrans += st.RailRetransmits
	}
	if retrans == 0 {
		t.Error("no WR retransmissions recorded; the rail death missed the transfers and the test proves nothing")
	}
	if live := rep.World.BufLive(); live != 0 {
		t.Errorf("BufLive() = %d after quiesce, want 0: a retransmit path leaked (or double-released) a payload view", live)
	}
}
