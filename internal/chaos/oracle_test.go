package chaos

import (
	"strings"
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/fabric"
	"ib12x/internal/harness"
	"ib12x/internal/model"
	"ib12x/internal/sim"
)

const oracleSeed = 42

// allPolicies is the full differential matrix: every built-in multi-rail
// policy must produce the same user-visible outcome.
var allPolicies = []core.Kind{
	core.Binding,
	core.RoundRobin,
	core.EvenStriping,
	core.WeightedStriping,
	core.EPC,
	core.Adaptive,
}

// faultPlans returns the plan set the matrix runs under. Times are aimed at
// the fault-free phase map (streams to ~600us, wildcards to ~630us,
// collectives to ~850us, one-sided to ~1.1ms); faulty runs stretch, which
// only moves the faults deeper into the workload.
func faultPlans() []*Plan {
	return []*Plan{
		NoFaults(),
		// A rail dies permanently while the p2p streams are in full flight:
		// in-flight stripes flush and retransmit on survivors.
		RailDeath(100*sim.Microsecond, 1, 2),
		// The whole send engine of node 0's port freezes for 200us: a QP
		// stall with no loss.
		StalledEngine(150*sim.Microsecond, 200*sim.Microsecond, 0, 0),
		// Node 1's link runs at 35% rate with 2us extra latency for most of
		// the run.
		DegradedLink(50*sim.Microsecond, 500*sim.Microsecond, 1, 0, 0.35, 2*sim.Microsecond),
		// A rail dies during the streams and comes back mid-collective:
		// rebinding in both directions.
		RailFlap(500*sim.Microsecond, 700*sim.Microsecond, 0, 1),
		// Everything at once: background chunk loss, a rail flap, and a
		// window of delayed completions.
		Merge("kitchen-sink",
			LegacyEveryN(97),
			RailFlap(120*sim.Microsecond, 300*sim.Microsecond, 1, 3),
			DelayedCompletions(200*sim.Microsecond, 400*sim.Microsecond, 0, 0, 3*sim.Microsecond),
		),
	}
}

// TestDifferentialOracle runs the seeded workload under every policy x every
// fault plan and requires a byte-identical user-visible digest everywhere,
// with zero invariant violations. The cells of one plan run concurrently on
// the harness pool — each conformance run owns a fresh engine and world, so
// parallel execution must (and this test verifies it does) produce the same
// digests a serial loop would.
func TestDifferentialOracle(t *testing.T) {
	for _, plan := range faultPlans() {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			// MapAll: a broken cell must not mask its siblings' failures.
			results, err := harness.MapAll(allPolicies, func(kind core.Kind) (*RunResult, error) {
				return RunConformance(OracleConfig{Seed: oracleSeed, Policy: kind, Plan: plan})
			})
			if err != nil {
				t.Fatalf("under %s: %v", plan.Name, err)
			}
			ref := results[0]
			for i, res := range results {
				for _, v := range res.Violations {
					t.Errorf("%v under %s: %s", allPolicies[i], plan.Name, v)
				}
				if res.Digest != ref.Digest {
					t.Errorf("digest split under %s: %s=%#x vs %s=%#x",
						plan.Name, ref.Policy, ref.Digest, res.Policy, res.Digest)
				}
			}
		})
	}
}

// TestConformanceSerialParallelIdentical pins the harness contract directly:
// the same matrix row run on one worker and on many workers must yield
// bit-identical digests, trace digests, and elapsed virtual times cell by
// cell.
func TestConformanceSerialParallelIdentical(t *testing.T) {
	plan := faultPlans()[5] // kitchen sink: the most event-heavy plan
	run := func(workers int) []*RunResult {
		res, err := harness.MapN(workers, allPolicies, func(kind core.Kind) (*RunResult, error) {
			return RunConformance(OracleConfig{Seed: oracleSeed, Policy: kind, Plan: plan})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Digest != p.Digest || s.TraceDigest != p.TraceDigest || s.Elapsed != p.Elapsed {
			t.Errorf("%s: serial/parallel diverge: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
				s.Policy, s.Digest, p.Digest, s.TraceDigest, p.TraceDigest, s.Elapsed, p.Elapsed)
		}
	}
}

// TestFaultPlansBite verifies the plans actually perturb the run rather
// than arming as no-ops: rail deaths force retransmissions on striping
// policies, chunk loss forces wire-level retransmits, and every fault plan
// shifts the protocol timeline away from the fault-free one.
func TestFaultPlansBite(t *testing.T) {
	base, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping})
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range faultPlans()[1:] {
		res, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping, Plan: plan})
		if err != nil {
			t.Fatalf("%s: %v", plan.Name, err)
		}
		if res.TraceDigest == base.TraceDigest {
			t.Errorf("%s: trace digest identical to fault-free run; plan did not bite", plan.Name)
		}
		if res.Elapsed <= base.Elapsed {
			t.Logf("%s: elapsed %v <= fault-free %v (allowed, but unusual)", plan.Name, res.Elapsed, base.Elapsed)
		}
	}

	death, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping,
		Plan: RailDeath(100*sim.Microsecond, 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if death.RailRetransmits == 0 {
		t.Error("rail death: no WR retransmissions recorded; recovery path untested")
	}

	lossy, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping, Plan: LegacyEveryN(97)})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.ChunkRetransmits == 0 {
		t.Error("legacy-every-97: no chunk retransmits recorded; loss knob did not arm")
	}
}

// truncatingPolicy is the deliberately broken policy of the negative test:
// it silently drops the last 64 bytes of any multi-stripe plan, the kind of
// off-by-one a real striping bug produces.
type truncatingPolicy struct{ inner core.Policy }

func (p truncatingPolicy) Name() string { return "truncating" }
func (p truncatingPolicy) PickEager(c core.Class, size, rails int, st *core.ConnState) int {
	return p.inner.PickEager(c, size, rails, st)
}
func (p truncatingPolicy) PlanBulk(c core.Class, size, rails int, st *core.ConnState) []core.Stripe {
	pl := p.inner.PlanBulk(c, size, rails, st)
	if len(pl) > 1 && pl[len(pl)-1].N > 64 {
		out := append([]core.Stripe(nil), pl...)
		out[len(out)-1].N -= 64
		return out
	}
	return pl
}

// TestOracleCatchesBrokenPolicy proves the oracle has teeth: a policy that
// under-covers its bulk plans must produce payload violations, not a pass.
func TestOracleCatchesBrokenPolicy(t *testing.T) {
	res, err := RunConformance(OracleConfig{
		Seed:       oracleSeed,
		PolicyImpl: truncatingPolicy{inner: core.New(core.EvenStriping, 4096)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("truncating policy produced zero violations; the oracle is blind")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v, "payload corrupt") || strings.Contains(v, "window after put") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("expected a payload-corruption violation, got: %v", res.Violations)
	}
}

// TestChaosReproducible replays the same (seed, policy, plan) cell twice
// and requires bit-identical digests — the chaos harness must be as
// deterministic as the fault-free simulator.
func TestChaosReproducible(t *testing.T) {
	plans := []*Plan{
		faultPlans()[5], // kitchen sink
		Generate(7, sim.Millisecond, 2, 4, 1),
	}
	for _, plan := range plans {
		cfg := OracleConfig{Seed: oracleSeed, Policy: core.Adaptive, Plan: plan}
		a, err := RunConformance(cfg)
		if err != nil {
			t.Fatalf("%s: %v", plan.Name, err)
		}
		b, err := RunConformance(cfg)
		if err != nil {
			t.Fatalf("%s replay: %v", plan.Name, err)
		}
		if a.Digest != b.Digest || a.TraceDigest != b.TraceDigest || a.Elapsed != b.Elapsed {
			t.Errorf("%s: replay diverged: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
				plan.Name, a.Digest, b.Digest, a.TraceDigest, b.TraceDigest, a.Elapsed, b.Elapsed)
		}
	}
}

// TestGenerateDeterministic pins Generate to its seed.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(99, sim.Millisecond, 4, 8, 2)
	b := Generate(99, sim.Millisecond, 4, 8, 2)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event count diverged: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Errorf("event %d diverged: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if len(a.Events) == 0 {
		t.Error("generated plan is empty")
	}
}

// TestWatchdogFires bounds a healthy run with an impossible deadline and
// expects the virtual-time watchdog to report the stuck ranks instead of
// simulating forever.
func TestWatchdogFires(t *testing.T) {
	_, err := RunConformance(OracleConfig{
		Seed:     oracleSeed,
		Policy:   core.EvenStriping,
		Deadline: 20 * sim.Microsecond,
	})
	if err == nil {
		t.Fatal("expected a watchdog error at a 20us deadline")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("expected a watchdog error, got: %v", err)
	}
}

// TestGeneratedPlansConverge sweeps seeded random plans across the policy
// matrix: whatever Generate throws at the fabric, every policy must still
// deliver the same answer.
func TestGeneratedPlansConverge(t *testing.T) {
	type cell struct {
		kind core.Kind
		plan *Plan
	}
	var cells []cell
	for seed := int64(1); seed <= 3; seed++ {
		plan := Generate(seed, 900*sim.Microsecond, 2, 4, 1)
		for _, kind := range allPolicies {
			cells = append(cells, cell{kind, plan})
		}
	}
	results, err := harness.Map(cells, func(c cell) (*RunResult, error) {
		return RunConformance(OracleConfig{Seed: oracleSeed, Policy: c.kind, Plan: c.plan})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		for _, v := range res.Violations {
			t.Errorf("%v under %s: %s", cells[i].kind, cells[i].plan.Name, v)
		}
		ref := results[i-i%len(allPolicies)] // first cell of this plan's row
		if res.Digest != ref.Digest {
			t.Errorf("digest split under %s: %s=%#x vs %s=%#x",
				cells[i].plan.Name, ref.Policy, ref.Digest, res.Policy, res.Digest)
		}
	}
}

// TestShardedSerialIdentical pins the sharded engine's determinism contract
// end to end: the full policy x fault-plan chaos matrix run on a sharded
// group (mpi.Config.Shards) must be BIT-identical to the serial engine —
// payload digest, protocol trace digest, and elapsed virtual time — at
// every shard count, with zero invariant violations. Shard counts above the
// topology's unit count clamp (topo.ShardPlan), so the 8-way sweep runs on
// an 8-node fabric where all 8 shards are real. The third sweep row runs
// the same matrix on a routed three-tier tree (adaptive), where shards map
// to pods and every trunk booking crosses the deferred-barrier path.
func TestShardedSerialIdentical(t *testing.T) {
	type cell struct {
		plan   *Plan
		policy core.Kind
	}
	var cells []cell
	for _, plan := range faultPlans() {
		for _, kind := range allPolicies {
			cells = append(cells, cell{plan, kind})
		}
	}
	threeTier := func(c *OracleConfig) {
		c.NodesPerSwitch = 1
		c.Tiers = 3
		c.SpinesPerPod = 2
		c.TrunkRate = model.Default().LinkRawRate / 4
		c.Routing = fabric.RouteAdaptive
	}
	matrix := func(nodes, shards int, shape func(*OracleConfig)) []*RunResult {
		t.Helper()
		res, err := harness.Map(cells, func(c cell) (*RunResult, error) {
			cfg := OracleConfig{
				Seed: oracleSeed, Policy: c.policy, Plan: c.plan,
				Nodes: nodes, Shards: shards,
			}
			if shape != nil {
				shape(&cfg)
			}
			return RunConformance(cfg)
		})
		if err != nil {
			t.Fatalf("nodes=%d shards=%d: %v", nodes, shards, err)
		}
		return res
	}
	for _, sweep := range []struct {
		nodes  int
		shards []int
		shape  func(*OracleConfig)
	}{
		{nodes: 4, shards: []int{1, 2, 4}},
		{nodes: 8, shards: []int{8}},
		{nodes: 4, shards: []int{2}, shape: threeTier},
	} {
		serial := matrix(sweep.nodes, 0, sweep.shape)
		for _, shards := range sweep.shards {
			sharded := matrix(sweep.nodes, shards, sweep.shape)
			for i, res := range sharded {
				ref := serial[i]
				for _, v := range res.Violations {
					t.Errorf("nodes=%d shards=%d %v under %s: %s",
						sweep.nodes, shards, cells[i].policy, cells[i].plan.Name, v)
				}
				if res.Digest != ref.Digest || res.TraceDigest != ref.TraceDigest || res.Elapsed != ref.Elapsed {
					t.Errorf("nodes=%d shards=%d %v under %s diverged from serial: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
						sweep.nodes, shards, cells[i].policy, cells[i].plan.Name,
						res.Digest, ref.Digest, res.TraceDigest, ref.TraceDigest, res.Elapsed, ref.Elapsed)
				}
			}
		}
	}
}
