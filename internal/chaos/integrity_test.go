package chaos

import (
	"testing"

	"ib12x/internal/adi"
	"ib12x/internal/core"
	"ib12x/internal/harness"
	"ib12x/internal/sim"
)

// corruptionCase pairs a corruption plan with the eager channel that gives
// it targets: torn writes only exist on the RDMA-write ring, while bit
// flips and header corruption hit both channels.
type corruptionCase struct {
	plan  *Plan
	proto adi.EagerProto
}

func corruptionCases() []corruptionCase {
	return []corruptionCase{
		// Every 7th payload chunk crossing any port picks up a seeded
		// single-bit flip once the streams are in full flight.
		{BitFlipPlan(20*sim.Microsecond, -1, 7, 0xB17F), adi.EagerSendRecv},
		// Every 9th eager envelope's wire header is mangled (seeded length
		// truncation when nobody is checking).
		{HeaderCorruptPlan(30*sim.Microsecond, -1, 9, 0x44D2), adi.EagerSendRecv},
		// Every 5th ring eager slot lands with its doorbell ahead of its
		// payload bytes.
		{TornWritePlan(0, -1, 5, 0x70A2), adi.EagerRDMAWrite},
		// Everything at once on the ring channel, composed with a rail flap
		// so NACK retransmits race rail retransmits.
		{Merge("corrupt-sink",
			BitFlipPlan(20*sim.Microsecond, -1, 11, 0xC0FE),
			TornWritePlan(0, -1, 6, 0x7042),
			RailFlap(120*sim.Microsecond, 300*sim.Microsecond, 1, 3),
		), adi.EagerRDMAWrite},
	}
}

// TestDifferentialOracleIntegrity is the headline: with IntegrityVerify
// armed, every corruption plan's payload digest across all six policies must
// be byte-identical to the FAULT-FREE baseline — the receiver catches every
// corrupted chunk by checksum, NACKs it, and the sender's retransmit (exempt
// from further corruption, like a real retry winning a coin toss the model
// makes deterministic) delivers the clean bytes. The checksum machinery may
// only shift time, never bytes: the verify-on/fault-free cell pins that too.
func TestDifferentialOracleIntegrity(t *testing.T) {
	base, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping})
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free with verification armed: checksums charge time on every
	// payload but the answer must not move and nothing may be NACKed.
	clean, err := RunConformance(OracleConfig{
		Seed: oracleSeed, Policy: core.EvenStriping, Integrity: adi.IntegrityVerify,
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Digest != base.Digest {
		t.Errorf("verify-on fault-free digest moved: %#x vs %#x", clean.Digest, base.Digest)
	}
	if clean.IntegrityNacks != 0 || clean.CorruptDeliveries != 0 {
		t.Errorf("fault-free run saw integrity traffic: nacks=%d corrupt=%d",
			clean.IntegrityNacks, clean.CorruptDeliveries)
	}
	// (No elapsed comparison: checksum charges shift scheduling decisions,
	// which can move completion time in either direction at workload scale.
	// The per-payload cost itself is pinned by the bench overhead table.)

	for _, tc := range corruptionCases() {
		tc := tc
		t.Run(tc.plan.Name, func(t *testing.T) {
			results, err := harness.MapAll(allPolicies, func(kind core.Kind) (*RunResult, error) {
				return RunConformance(OracleConfig{
					Seed: oracleSeed, Policy: kind, Plan: tc.plan,
					EagerProto: tc.proto,
					Integrity:  adi.IntegrityVerify,
				})
			})
			if err != nil {
				t.Fatalf("verify matrix under %s: %v", tc.plan.Name, err)
			}
			var nacks, repolls, corrupt int64
			for i, res := range results {
				for _, v := range res.Violations {
					t.Errorf("%v under %s: %s", allPolicies[i], tc.plan.Name, v)
				}
				if res.Digest != base.Digest {
					t.Errorf("corruption leaked past verification under %s: %s=%#x vs fault-free %#x",
						tc.plan.Name, res.Policy, res.Digest, base.Digest)
				}
				nacks += res.IntegrityNacks
				repolls += res.TornRepolls
				corrupt += res.CorruptDeliveries
			}
			if corrupt != 0 {
				t.Errorf("verify mode delivered %d corrupted payloads", corrupt)
			}
			switch tc.plan.Name {
			case "torn-write-n-1-every-5":
				if repolls == 0 {
					t.Error("torn plan never forced a doorbell repoll")
				}
			default:
				if nacks == 0 {
					t.Errorf("plan %s never triggered a NACK; injection is not engaging", tc.plan.Name)
				}
			}
		})
	}
}

// TestIntegrityGeneratedPlansConverge feeds seeded corruption-enriched
// random plans (GenerateCorrupting) through all policies with verification
// armed: every cell must still reproduce the fault-free digest.
func TestIntegrityGeneratedPlansConverge(t *testing.T) {
	base, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping})
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		kind core.Kind
		plan *Plan
	}
	var cells []cell
	for seed := int64(1); seed <= 3; seed++ {
		plan := GenerateCorrupting(seed, 900*sim.Microsecond, 2, 4, 1)
		for _, kind := range allPolicies {
			cells = append(cells, cell{kind, plan})
		}
	}
	results, err := harness.Map(cells, func(c cell) (*RunResult, error) {
		return RunConformance(OracleConfig{
			Seed: oracleSeed, Policy: c.kind, Plan: c.plan,
			EagerProto: adi.EagerRDMAWrite,
			Integrity:  adi.IntegrityVerify,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var nacks int64
	for i, res := range results {
		for _, v := range res.Violations {
			t.Errorf("%v under %s: %s", cells[i].kind, cells[i].plan.Name, v)
		}
		if res.Digest != base.Digest {
			t.Errorf("digest split under %s: %s=%#x vs fault-free %#x",
				cells[i].plan.Name, res.Policy, res.Digest, base.Digest)
		}
		nacks += res.IntegrityNacks
	}
	if nacks == 0 {
		t.Error("no generated plan ever triggered a NACK; GenerateCorrupting is toothless")
	}
}

// TestIntegritySerialParallelIdentical pins the harness contract for the
// integrity layer: the heaviest corruption row run on one worker and on many
// must yield bit-identical digests, trace digests, and elapsed times.
func TestIntegritySerialParallelIdentical(t *testing.T) {
	tc := corruptionCases()[3] // corrupt-sink
	run := func(workers int) []*RunResult {
		res, err := harness.MapN(workers, allPolicies, func(kind core.Kind) (*RunResult, error) {
			return RunConformance(OracleConfig{
				Seed: oracleSeed, Policy: kind, Plan: tc.plan,
				EagerProto: tc.proto,
				Integrity:  adi.IntegrityVerify,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Digest != p.Digest || s.TraceDigest != p.TraceDigest || s.Elapsed != p.Elapsed {
			t.Errorf("integrity %s: serial/parallel diverge: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
				s.Policy, s.Digest, p.Digest, s.TraceDigest, p.TraceDigest, s.Elapsed, p.Elapsed)
		}
		if s.IntegrityNacks != p.IntegrityNacks || s.TornRepolls != p.TornRepolls {
			t.Errorf("integrity %s: counters diverge: nacks %d/%d repolls %d/%d",
				s.Policy, s.IntegrityNacks, p.IntegrityNacks, s.TornRepolls, p.TornRepolls)
		}
	}
}

// TestIntegrityShardedIdentical pins the sharded engine against the serial
// one with corruption injected and verification armed on a 4-node fabric.
// The per-port corruption counters advance at post time on the owning
// shard, and the NACK retransmit reposts on the receiver's evidence carried
// back in the completion — nothing crosses shards outside the existing
// merge rule, so every digest must be bit-identical at every shard count.
func TestIntegrityShardedIdentical(t *testing.T) {
	type cell struct {
		tc     corruptionCase
		policy core.Kind
	}
	cases := corruptionCases()
	cells := []cell{
		{cases[0], core.EPC},
		{cases[0], core.EvenStriping},
		{cases[2], core.EPC},
		{cases[3], core.EvenStriping},
	}
	matrix := func(shards int) []*RunResult {
		t.Helper()
		res, err := harness.Map(cells, func(c cell) (*RunResult, error) {
			return RunConformance(OracleConfig{
				Seed: oracleSeed, Policy: c.policy, Plan: c.tc.plan,
				Nodes: 4, Shards: shards,
				EagerProto: c.tc.proto,
				Integrity:  adi.IntegrityVerify,
			})
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res
	}
	serial := matrix(0)
	for _, shards := range []int{1, 2, 4} {
		sharded := matrix(shards)
		for i, res := range sharded {
			ref := serial[i]
			for _, v := range res.Violations {
				t.Errorf("shards=%d %v under %s: %s", shards, cells[i].policy, cells[i].tc.plan.Name, v)
			}
			if res.Digest != ref.Digest || res.TraceDigest != ref.TraceDigest || res.Elapsed != ref.Elapsed {
				t.Errorf("shards=%d %v under %s diverged from serial: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
					shards, cells[i].policy, cells[i].tc.plan.Name,
					res.Digest, ref.Digest, res.TraceDigest, ref.TraceDigest, res.Elapsed, ref.Elapsed)
			}
			if res.IntegrityNacks != ref.IntegrityNacks || res.TornRepolls != ref.TornRepolls {
				t.Errorf("shards=%d %v under %s: counters diverge: nacks %d/%d repolls %d/%d",
					shards, cells[i].policy, cells[i].tc.plan.Name,
					res.IntegrityNacks, ref.IntegrityNacks, res.TornRepolls, ref.TornRepolls)
			}
		}
	}
}

// TestIntegrityAuditSeesCorruption is the negative control: with
// verification disarmed every corruption plan must actually land corrupted
// bytes in user buffers — the workload's own checks report violations and
// the audit tally counts at least one corrupt delivery per plan. This
// proves the verify-mode digests above are earned by the checksum machinery,
// not by injection silently failing to engage.
func TestIntegrityAuditSeesCorruption(t *testing.T) {
	for _, tc := range corruptionCases() {
		tc := tc
		t.Run(tc.plan.Name, func(t *testing.T) {
			for _, mode := range []adi.IntegrityMode{adi.IntegrityOff, adi.IntegrityAudit} {
				res, err := RunConformance(OracleConfig{
					Seed: oracleSeed, Policy: core.EvenStriping, Plan: tc.plan,
					EagerProto: tc.proto,
					Integrity:  mode,
				})
				if err != nil {
					t.Fatalf("%v under %s: %v", mode, tc.plan.Name, err)
				}
				if res.CorruptDeliveries == 0 {
					t.Errorf("%v under %s: no corrupt delivery tallied; injection not engaging", mode, tc.plan.Name)
				}
				if len(res.Violations) == 0 {
					t.Errorf("%v under %s: corruption left no mark on the workload", mode, tc.plan.Name)
				}
				if res.IntegrityNacks != 0 {
					t.Errorf("%v under %s: disarmed run NACKed %d times", mode, tc.plan.Name, res.IntegrityNacks)
				}
			}
		})
	}
}

// TestIntegrityAuditTimingMatchesOff pins audit mode's contract: tallying
// is free. An audit run must be bit-identical to the off run — same digest,
// same trace, same elapsed — differing only in the counter block.
func TestIntegrityAuditTimingMatchesOff(t *testing.T) {
	tc := corruptionCases()[0]
	runMode := func(mode adi.IntegrityMode) *RunResult {
		res, err := RunConformance(OracleConfig{
			Seed: oracleSeed, Policy: core.RoundRobin, Plan: tc.plan,
			EagerProto: tc.proto, Integrity: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := runMode(adi.IntegrityOff)
	audit := runMode(adi.IntegrityAudit)
	if off.Digest != audit.Digest || off.TraceDigest != audit.TraceDigest || off.Elapsed != audit.Elapsed {
		t.Errorf("audit mode changed the run: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
			off.Digest, audit.Digest, off.TraceDigest, audit.TraceDigest, off.Elapsed, audit.Elapsed)
	}
	if audit.CorruptDeliveries == 0 {
		t.Error("audit run tallied nothing")
	}
	if off.CorruptDeliveries != audit.CorruptDeliveries {
		t.Errorf("off/audit tallies diverge: %d vs %d", off.CorruptDeliveries, audit.CorruptDeliveries)
	}
}

// TestIntegrityCorruptionStrikes mirrors the adi-level reliability tests at
// oracle scale: with both the reliability layer and verification armed, a
// brief corruption burst must strike the rail into suspicion and recovery
// must reintegrate it — with the answer untouched.
func TestIntegrityCorruptionStrikes(t *testing.T) {
	base, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping})
	if err != nil {
		t.Fatal(err)
	}
	// The flip arms at 20us and disarms at 400us: a transient corruptor, the
	// moral equivalent of a loose cable reseated mid-run.
	plan := Merge("transient-flipper",
		BitFlipPlan(20*sim.Microsecond, -1, 5, 0xFACE),
		&Plan{Events: []Event{{At: 400 * sim.Microsecond, Kind: BitFlipEveryN, Node: -1, Port: -1, N: 0}}},
	)
	res, err := RunConformance(OracleConfig{
		Seed: oracleSeed, Policy: core.EvenStriping, Plan: plan,
		Integrity: adi.IntegrityVerify,
		Reliability: &adi.ReliabilityConfig{
			Seed:         oracleSeed,
			SuspectAfter: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Digest != base.Digest {
		t.Errorf("corruption strikes changed the answer: %#x vs %#x", res.Digest, base.Digest)
	}
	if res.IntegrityNacks == 0 {
		t.Error("no NACKs; the flipper never engaged")
	}
	if res.RailSuspects == 0 {
		t.Error("corruption strikes never drove a rail to suspicion")
	}
}
