package chaos

import (
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/fabric"
	"ib12x/internal/harness"
	"ib12x/internal/model"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
	"ib12x/internal/topo"
)

// The routed-fabric oracle cells: 4 nodes × 1 proc (every pair crosses the
// fabric, which is the point), on a three-tier 2:1 tree and a two-group
// dragonfly. Trunks run at a quarter of the link rate on the tree, so the
// leaf ratio is 1·link : 2·(link/4) = 2:1 oversubscribed.
type routedShape struct {
	name string
	set  func(*OracleConfig)
}

func routedShapes() []routedShape {
	link := model.Default().LinkRawRate
	return []routedShape{
		{"tree3-2to1", func(c *OracleConfig) {
			c.NodesPerSwitch = 1
			c.Tiers = 3
			c.SpinesPerPod = 2
			c.TrunkRate = link / 4
		}},
		{"dragonfly", func(c *OracleConfig) {
			c.Dragonfly = topo.Dragonfly{Groups: 2, RoutersPerGroup: 2, GlobalLinks: 2}
			c.TrunkRate = link / 2
		}},
	}
}

var bothRoutings = []fabric.Routing{fabric.RouteStatic, fabric.RouteAdaptive}

// routedPlans is the chaos matrix for routing cells: the standard fault
// plans plus the trunk-plane degrade that only routed fabrics can feel.
func routedPlans() []*Plan {
	return append(faultPlans(),
		DegradedTrunk(50*sim.Microsecond, 500*sim.Microsecond, 0, 0.25))
}

// TestDifferentialOracleRouting runs the seeded workload over the full
// 6-policy × fault-plan chaos matrix on a three-tier 2:1 tree and a
// dragonfly group, under both static and adaptive routing, and requires
// every cell's payload digest to be byte-identical to the flat-fabric
// baseline of the same plan. Routing moves bytes in time — extra hops,
// contention, re-selected lanes — never in content or matching order, so
// the user-visible bytes must not change even while trunks degrade and
// rails die mid-run. Zero violations also pins World.BufLive()==0.
func TestDifferentialOracleRouting(t *testing.T) {
	type cell struct {
		shape   routedShape
		routing fabric.Routing
		policy  core.Kind
	}
	var cells []cell
	for _, shape := range routedShapes() {
		for _, routing := range bothRoutings {
			for _, kind := range allPolicies {
				cells = append(cells, cell{shape, routing, kind})
			}
		}
	}
	for _, plan := range routedPlans() {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			ref, err := RunConformance(OracleConfig{
				Seed: oracleSeed, Policy: core.EvenStriping, Plan: plan,
				Nodes: 4, ProcsPerNode: 1,
			})
			if err != nil {
				t.Fatalf("flat baseline under %s: %v", plan.Name, err)
			}
			results, err := harness.Map(cells, func(c cell) (*RunResult, error) {
				cfg := OracleConfig{
					Seed: oracleSeed, Policy: c.policy, Plan: plan,
					Nodes: 4, ProcsPerNode: 1, Routing: c.routing,
				}
				c.shape.set(&cfg)
				return RunConformance(cfg)
			})
			if err != nil {
				t.Fatalf("routing matrix under %s: %v", plan.Name, err)
			}
			for i, res := range results {
				c := cells[i]
				for _, v := range res.Violations {
					t.Errorf("%s/%v %v under %s: %s", c.shape.name, c.routing, c.policy, plan.Name, v)
				}
				if res.Digest != ref.Digest {
					t.Errorf("digest split under %s: flat=%#x vs %s/%v %v=%#x",
						plan.Name, ref.Digest, c.shape.name, c.routing, c.policy, res.Digest)
				}
			}
		})
	}
}

// TestRoutingSerialParallelIdentical pins the harness contract on routed
// fabrics: the adaptive three-tier matrix row run on one worker and on
// many must yield bit-identical digests, trace digests, and elapsed
// virtual times cell by cell.
func TestRoutingSerialParallelIdentical(t *testing.T) {
	plan := routedPlans()[5] // kitchen sink: the most event-heavy plan
	shape := routedShapes()[0]
	run := func(workers int) []*RunResult {
		res, err := harness.MapN(workers, allPolicies, func(kind core.Kind) (*RunResult, error) {
			cfg := OracleConfig{
				Seed: oracleSeed, Policy: kind, Plan: plan,
				Nodes: 4, ProcsPerNode: 1, Routing: fabric.RouteAdaptive,
			}
			shape.set(&cfg)
			return RunConformance(cfg)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Digest != p.Digest || s.TraceDigest != p.TraceDigest || s.Elapsed != p.Elapsed {
			t.Errorf("%s: serial/parallel diverge: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
				s.Policy, s.Digest, p.Digest, s.TraceDigest, p.TraceDigest, s.Elapsed, p.Elapsed)
		}
	}
}

// TestRoutingShardedIdentical pins the sharded engine against the serial
// one on routed fabrics: every spine/core/global lane carries traffic from
// several shards and adaptive selection reads those lanes' load at booking
// time, so the whole path booking is deferred to the window barrier where
// it applies in serial posting order. A bounded cut of the matrix — the
// kitchen-sink, trunk-degrade, and rail-death plans × two policies × both
// shapes, adaptive routing — must be bit-identical (digest, trace,
// elapsed) at every shard count, with zero violations.
func TestRoutingShardedIdentical(t *testing.T) {
	type cell struct {
		shape  routedShape
		plan   *Plan
		policy core.Kind
	}
	plans := []*Plan{
		routedPlans()[5], // kitchen sink
		DegradedTrunk(50*sim.Microsecond, 500*sim.Microsecond, 0, 0.25),
		RailDeath(100*sim.Microsecond, 1, 2),
	}
	var cells []cell
	for _, shape := range routedShapes() {
		for _, plan := range plans {
			for _, kind := range []core.Kind{core.EPC, core.EvenStriping} {
				cells = append(cells, cell{shape, plan, kind})
			}
		}
	}
	matrix := func(shards int) []*RunResult {
		t.Helper()
		res, err := harness.Map(cells, func(c cell) (*RunResult, error) {
			cfg := OracleConfig{
				Seed: oracleSeed, Policy: c.policy, Plan: c.plan,
				Nodes: 4, ProcsPerNode: 1, Shards: shards,
				Routing: fabric.RouteAdaptive,
			}
			c.shape.set(&cfg)
			return RunConformance(cfg)
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res
	}
	serial := matrix(0)
	// Both shapes have 2 sharding units (2 pods / 2 groups); 4 exercises
	// the clamp.
	for _, shards := range []int{2, 4} {
		sharded := matrix(shards)
		for i, res := range sharded {
			c, ref := cells[i], serial[i]
			for _, v := range res.Violations {
				t.Errorf("shards=%d %s %v under %s: %s", shards, c.shape.name, c.policy, c.plan.Name, v)
			}
			if res.Digest != ref.Digest || res.TraceDigest != ref.TraceDigest || res.Elapsed != ref.Elapsed {
				t.Errorf("shards=%d %s %v under %s diverged from serial: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
					shards, c.shape.name, c.policy, c.plan.Name,
					res.Digest, ref.Digest, res.TraceDigest, ref.TraceDigest, res.Elapsed, ref.Elapsed)
			}
		}
	}
}

// TestAdaptiveBeatsStaticUnderTrunkDegrade is the system-level SetRate ×
// adaptive regression (the fabric-level tie-break is pinned in
// internal/fabric): with one spine plane of a 2:1 three-tier tree
// degraded to a tenth of its rate from t=0, static D-mod-K keeps hashing
// half the flows onto the slow plane while adaptive routes around it —
// fewer bytes on the degraded plane and a faster finish.
func TestAdaptiveBeatsStaticUnderTrunkDegrade(t *testing.T) {
	link := model.Default().LinkRawRate
	run := func(routing fabric.Routing) (sim.Time, int64, int64) {
		rep, err := mpi.Run(mpi.Config{
			Nodes: 4, ProcsPerNode: 1, QPsPerPort: 4, Policy: core.EPC,
			NodesPerSwitch: 1, Tiers: 3, SpinesPerPod: 2, TrunkRate: link / 4,
			Routing: routing,
			Chaos:   DegradedTrunk(0, sim.Second, 0, 0.1),
		}, func(c *mpi.Comm) {
			// Cross-pod shift exchange: every byte rides the trunks.
			peer := (c.Rank() + c.Size()/2) % c.Size()
			for it := 0; it < 4; it++ {
				c.SendrecvN(peer, 0, nil, 1<<20, peer, 0, nil, 1<<20)
			}
		})
		if err != nil {
			t.Fatalf("routing=%v: %v", routing, err)
		}
		_, slow := rep.World.Cluster.Net.PlaneStats(0)
		_, fast := rep.World.Cluster.Net.PlaneStats(1)
		return rep.Elapsed, slow, fast
	}
	statElapsed, statSlow, _ := run(fabric.RouteStatic)
	adptElapsed, adptSlow, adptFast := run(fabric.RouteAdaptive)
	if adptSlow >= statSlow {
		t.Errorf("adaptive booked %d bytes on the degraded plane, static %d — no avoidance", adptSlow, statSlow)
	}
	if adptElapsed >= statElapsed {
		t.Errorf("adaptive elapsed %v not better than static %v under a degraded plane", adptElapsed, statElapsed)
	}
	if adptFast == 0 {
		t.Errorf("adaptive booked nothing at all on the healthy plane")
	}
}
