package chaos

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"ib12x/internal/adi"
	"ib12x/internal/core"
	"ib12x/internal/fabric"
	"ib12x/internal/mpi"
	"ib12x/internal/regcache"
	"ib12x/internal/sim"
	"ib12x/internal/stats"
	"ib12x/internal/topo"
	"ib12x/internal/trace"
)

// OracleConfig selects one cell of the differential matrix: a seeded
// workload run under one scheduling policy and one fault plan.
type OracleConfig struct {
	Seed       int64
	Policy     core.Kind
	PolicyImpl core.Policy // overrides Policy when non-nil
	Plan       *Plan       // nil = fault-free
	// Reliability, when non-nil, arms the self-healing rail layer: the run
	// must then survive rail chaos with no operator-driven mask updates.
	Reliability *adi.ReliabilityConfig
	// RegCache, when non-nil, arms the pin-down registration cache: the
	// payload digest must stay byte-identical to cache-off runs (charges
	// shift time, never bytes), and the timeline must still replay.
	RegCache *regcache.Config

	// EagerProto selects the eager channel (mpi.Config.EagerProto). The
	// RDMA-write ring moves every small message onto a different transport
	// path, yet the payload digest must stay byte-identical to the
	// send/recv baseline's: both channels share the per-connection
	// sequence space, so matching order is protocol-invariant.
	EagerProto adi.EagerProto

	Nodes        int // default 2
	ProcsPerNode int // default 2
	QPsPerPort   int // default 4 rails
	Deadline     sim.Time

	// Fabric shape beyond the flat default (mpi.Config fields of the same
	// names): a two-level fat tree (NodesPerSwitch alone), the routed
	// three-tier tree (Tiers = 3 with SpinesPerPod) or dragonfly
	// (Dragonfly.Groups > 0), with Routing picking static vs adaptive
	// path selection. The workload's payload digest is topology- and
	// routing-invariant — routes move bytes in time, never in content or
	// matching order — so every cell must still match the flat baseline.
	NodesPerSwitch int
	TrunkRate      float64
	Tiers          int
	SpinesPerPod   int
	Dragonfly      topo.Dragonfly
	Routing        fabric.Routing
	// Shards runs the workload on a sharded engine group (mpi.Config.Shards).
	// Every digest must be byte-identical to the serial run's.
	Shards int

	// CollAlg selects the collective-algorithm family (mpi.Config.CollAlg).
	// The workload's collective phase only uses exact operators, so the
	// payload digest must be byte-identical to the striped baseline's even
	// under mpi.CollLane's ring-ordered reductions.
	CollAlg mpi.CollAlg

	// Integrity selects the end-to-end checksum mode (mpi.Config.Integrity).
	// Under IntegrityVerify every corrupted chunk is caught at the receiver
	// and NACK-retransmitted, so the payload digest must be byte-identical to
	// the fault-free baseline's even under corruption plans. IntegrityAudit
	// delivers the corruption (tallied) and IntegrityOff is the historical
	// zero value.
	Integrity adi.IntegrityMode
}

func (c OracleConfig) withDefaults() OracleConfig {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.ProcsPerNode == 0 {
		c.ProcsPerNode = 2
	}
	if c.QPsPerPort == 0 {
		c.QPsPerPort = 4
	}
	if c.Deadline == 0 {
		c.Deadline = sim.Second
	}
	return c
}

// RunResult is one cell's outcome.
type RunResult struct {
	Policy string
	Plan   string

	// Digest summarises everything MPI semantics make deterministic:
	// payload bytes, per-stream completion order, collective results,
	// one-sided window contents. It must be byte-identical across all
	// policies and all fault plans.
	Digest uint64
	// TraceDigest folds the full protocol timeline (event times, kinds,
	// rails) with the final clock. It is policy- and plan-specific but must
	// replay identically for the same (seed, policy, plan).
	TraceDigest uint64

	// Violations lists every broken invariant a rank observed.
	Violations []string

	Elapsed          sim.Time
	RailRetransmits  int64 // WRs rerouted after rail deaths
	ChunkRetransmits int64 // chunks lost on the wire and resent

	// Integrity-layer activity summed over ranks (all zero when
	// OracleConfig.Integrity is IntegrityOff and the plan injects no
	// corruption). NACKs count receiver-detected checksum failures that
	// forced a retransmit; corrupt deliveries count payloads that landed
	// tainted with verification disarmed; torn repolls count eager-ring
	// slots whose doorbell beat their payload.
	IntegrityNacks    int64
	CorruptDeliveries int64
	TornRepolls       int64

	// Rail-health transitions of the reliability layer, summed over ranks
	// (all zero when OracleConfig.Reliability is nil).
	RailSuspects       int64
	RailQuarantines    int64
	RailProbes         int64
	RailReintegrations int64
	// Health renders the transition tallies as an ordered counter block.
	Health *stats.Counters

	// Pin-down registration cache activity summed over ranks (peak is the
	// worst rank); all zero when OracleConfig.RegCache is nil. RegCacheStats
	// renders the tallies as an ordered counter block.
	RegHits, RegMisses, RegEvictions int64
	RegPinnedPeak                    int64
	RegCacheStats                    *stats.Counters
}

// ---- seeded workload script ----

// script is the seed-derived workload, fixed before the run starts so every
// rank executes against the same read-only description.
type script struct {
	size     int
	msgs     [][][]int // [src][dst] -> message sizes, sent in order
	async    [][]bool  // [src][dst] -> sender uses an isend window
	wildN    int       // wildcard message size
	vecLen   int       // allreduce vector length
	bcastN   int       // broadcast bytes
	a2aBlock int       // alltoall per-pair block bytes
	putN     int       // one-sided put bytes (>= rendezvous threshold)
	stride   int       // per-source window region stride
	winN     int       // window bytes
}

func buildScript(seed int64, size int) *script {
	rng := rand.New(rand.NewSource(seed))
	palette := []int{1 << 10, 3 << 10, 9 << 10, 24 << 10, 48 << 10, 96 << 10, 160 << 10}
	sc := &script{
		size:     size,
		wildN:    2 << 10,
		vecLen:   96,
		bcastN:   32 << 10,
		a2aBlock: 8 << 10,
		putN:     20 << 10,
		stride:   24 << 10,
	}
	sc.winN = size*sc.stride + (32 << 10)
	sc.msgs = make([][][]int, size)
	sc.async = make([][]bool, size)
	for s := 0; s < size; s++ {
		sc.msgs[s] = make([][]int, size)
		sc.async[s] = make([]bool, size)
		for d := 0; d < size; d++ {
			if d == s {
				continue
			}
			k := 2 + rng.Intn(2)
			for i := 0; i < k; i++ {
				sc.msgs[s][d] = append(sc.msgs[s][d], palette[rng.Intn(len(palette))]+rng.Intn(512))
			}
			sc.async[s][d] = rng.Intn(2) == 0
		}
	}
	return sc
}

// Payload patterns. Each embeds enough identity (sender, receiver, sequence
// number) that a stripe landing in the wrong place, a dropped tail, or an
// overtaken message shows up as a byte mismatch.
func patA(src, dst, seq, i int) byte { return byte(137*src + 29*dst + 17*seq + i) }
func patB(src, dst, i int) byte      { return byte(73*src + 11*dst + 3 + i) }
func patC(i int) byte                { return byte(5*i + 1) }
func patA2A(src, dst, i int) byte    { return byte(31*src + 59*dst + i) }
func patW(rank, i int) byte          { return byte(97*rank + 7 + i) }
func patP(src, i int) byte           { return byte(61*src + 13 + i) }

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// ---- the conformance run ----

// RunConformance executes the seeded workload under the configured policy
// and fault plan. Protocol errors surface as Violations; a hang surfaces as
// the watchdog error from the virtual-time deadline.
func RunConformance(cfg OracleConfig) (*RunResult, error) {
	cfg = cfg.withDefaults()
	size := cfg.Nodes * cfg.ProcsPerNode
	sc := buildScript(cfg.Seed, size)

	rec := trace.NewRecorder(1 << 20)
	recs := make([][]uint64, size)
	viols := make([][]string, size)

	mcfg := mpi.Config{
		Nodes:          cfg.Nodes,
		ProcsPerNode:   cfg.ProcsPerNode,
		QPsPerPort:     cfg.QPsPerPort,
		Policy:         cfg.Policy,
		PolicyImpl:     cfg.PolicyImpl,
		EagerProto:     cfg.EagerProto,
		Trace:          rec,
		Deadline:       cfg.Deadline,
		Shards:         cfg.Shards,
		CollAlg:        cfg.CollAlg,
		Integrity:      cfg.Integrity,
		NodesPerSwitch: cfg.NodesPerSwitch,
		TrunkRate:      cfg.TrunkRate,
		Tiers:          cfg.Tiers,
		SpinesPerPod:   cfg.SpinesPerPod,
		Dragonfly:      cfg.Dragonfly,
		Routing:        cfg.Routing,
	}
	if cfg.Plan != nil {
		mcfg.Chaos = cfg.Plan
	}
	if cfg.Reliability != nil {
		mcfg.Reliability = cfg.Reliability
	}
	mcfg.RegCache = cfg.RegCache
	mcfg.BufAudit = true

	rep, err := mpi.Run(mcfg, func(c *mpi.Comm) {
		r := c.Rank()
		push := func(vs ...uint64) { recs[r] = append(recs[r], vs...) }
		// Each rank writes only its own stream slots, so neither serial runs
		// (one rank at a time on the baton) nor sharded runs (ranks of
		// different shards in parallel) need a lock; flattening in rank order
		// below keeps the report deterministic either way.
		violf := func(format string, args ...any) {
			viols[r] = append(viols[r], fmt.Sprintf("rank %d: %s", r, fmt.Sprintf(format, args...)))
		}
		phaseStreams(c, sc, push, violf)
		c.Barrier()
		phaseWildcards(c, sc, push, violf)
		c.Barrier()
		phaseCollectives(c, sc, push, violf)
		c.Barrier()
		phaseOneSided(c, sc, push, violf)
	})
	if err != nil {
		return nil, err
	}

	var violations []string
	for _, vs := range viols {
		violations = append(violations, vs...)
	}

	// Payload-ownership invariant: with every request complete and every
	// envelope consumed, no refcounted payload block may still be held —
	// not even by a retransmission path that re-posted a stripe after a
	// rail death. A nonzero count means some path leaked (or double-held)
	// a reference.
	if live := rep.World.BufLive(); live != 0 {
		msg := fmt.Sprintf("payload leak: %d buffer blocks still referenced after quiesce", live)
		if report := rep.World.BufLiveReport(); report != "" {
			msg += " [" + report + "]"
		}
		violations = append(violations, msg)
	}

	res := &RunResult{
		Plan:    "no-faults",
		Elapsed: rep.Elapsed,
	}
	if cfg.Plan != nil {
		res.Plan = cfg.Plan.Name
	}
	if cfg.PolicyImpl != nil {
		res.Policy = cfg.PolicyImpl.Name()
	} else {
		res.Policy = cfg.Policy.String()
	}
	res.Violations = violations

	// User-visible digest: per-rank record streams in rank order.
	h := fnv.New64a()
	var le [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(le[:], v)
		h.Write(le[:])
	}
	for r, vals := range recs {
		put(0xABCD0000 + uint64(r))
		for _, v := range vals {
			put(v)
		}
	}
	res.Digest = h.Sum64()

	// Trace digest: the full protocol timeline plus the final clock.
	th := fnv.New64a()
	putT := func(v uint64) {
		binary.LittleEndian.PutUint64(le[:], v)
		th.Write(le[:])
	}
	for _, e := range rec.Events() {
		putT(uint64(e.T))
		putT(uint64(e.Kind)<<32 | uint64(uint32(e.Rank)))
		putT(uint64(uint32(e.Peer))<<32 | uint64(uint32(e.Rail)))
		putT(uint64(e.Bytes))
	}
	putT(uint64(rep.Elapsed))
	res.TraceDigest = th.Sum64()

	for _, st := range rep.RankStats {
		res.IntegrityNacks += st.IntegrityNacks
		res.CorruptDeliveries += st.CorruptDeliveries
		res.TornRepolls += st.TornRepolls
	}
	for _, st := range rep.RankStats {
		res.RailRetransmits += st.RailRetransmits
		res.RailSuspects += st.RailSuspects
		res.RailQuarantines += st.RailQuarantines
		res.RailProbes += st.RailProbes
		res.RailReintegrations += st.RailReintegrations
	}
	res.Health = &stats.Counters{Title: "rail health transitions"}
	res.Health.Add("suspects", res.RailSuspects)
	res.Health.Add("quarantines", res.RailQuarantines)
	res.Health.Add("probes", res.RailProbes)
	res.Health.Add("reintegrations", res.RailReintegrations)
	for _, st := range rep.RankStats {
		res.RegHits += st.RegHits
		res.RegMisses += st.RegMisses
		res.RegEvictions += st.RegEvictions
		if st.RegPinnedPeak > res.RegPinnedPeak {
			res.RegPinnedPeak = st.RegPinnedPeak
		}
	}
	res.RegCacheStats = &stats.Counters{Title: "pin-down registration cache"}
	res.RegCacheStats.Add("hits", res.RegHits)
	res.RegCacheStats.Add("misses", res.RegMisses)
	res.RegCacheStats.Add("evictions", res.RegEvictions)
	res.RegCacheStats.Add("pinned bytes high-water", res.RegPinnedPeak)
	for _, node := range rep.World.Cluster.Nodes {
		for _, port := range node.Ports() {
			res.ChunkRetransmits += port.Retransmits
		}
	}
	return res, nil
}

// phaseStreams drives same-tag per-pair message streams mixing eager and
// rendezvous sizes. Receives are pre-posted in order, so MPI's
// non-overtaking rule pins which payload each must deliver: slot k of the
// (s -> r) stream must carry sequence number k.
func phaseStreams(c *mpi.Comm, sc *script, push func(...uint64), violf func(string, ...any)) {
	const tag = 10
	r, size := c.Rank(), c.Size()

	type stream struct {
		src  int
		bufs [][]byte
		reqs []*mpi.Request
	}
	var streams []stream
	for s := 0; s < size; s++ {
		if s == r || len(sc.msgs[s][r]) == 0 {
			continue
		}
		st := stream{src: s}
		for _, n := range sc.msgs[s][r] {
			buf := make([]byte, n)
			st.bufs = append(st.bufs, buf)
			st.reqs = append(st.reqs, c.Irecv(s, tag, buf))
		}
		streams = append(streams, st)
	}

	for d := 0; d < size; d++ {
		if d == r {
			continue
		}
		sizes := sc.msgs[r][d]
		if sc.async[r][d] {
			var reqs []*mpi.Request
			for seq, n := range sizes {
				data := make([]byte, n)
				for i := range data {
					data[i] = patA(r, d, seq, i)
				}
				reqs = append(reqs, c.Isend(d, tag, data))
			}
			c.Waitall(reqs)
			for _, req := range reqs {
				req.Release()
			}
		} else {
			for seq, n := range sizes {
				data := make([]byte, n)
				for i := range data {
					data[i] = patA(r, d, seq, i)
				}
				c.Send(d, tag, data)
			}
		}
	}

	for _, st := range streams {
		for seq, req := range st.reqs {
			stat := c.Wait(req)
			req.Release()
			want := sc.msgs[st.src][r][seq]
			if stat.Err != nil {
				violf("stream %d->%d seq %d: status error %v", st.src, r, seq, stat.Err)
			}
			if stat.Source != st.src || stat.Tag != tag || stat.Count != want {
				violf("stream %d->%d seq %d: status (src=%d tag=%d count=%d), want (src=%d tag=%d count=%d)",
					st.src, r, seq, stat.Source, stat.Tag, stat.Count, st.src, tag, want)
			}
			bad := -1
			for i, b := range st.bufs[seq] {
				if b != patA(st.src, r, seq, i) {
					bad = i
					break
				}
			}
			if bad >= 0 {
				violf("stream %d->%d seq %d: payload corrupt at byte %d (got %#x want %#x)",
					st.src, r, seq, bad, st.bufs[seq][bad], patA(st.src, r, seq, bad))
			}
			push(uint64(st.src), uint64(seq), uint64(stat.Count), hashBytes(st.bufs[seq]))
		}
	}
}

// phaseWildcards posts fully wild receives (AnySource, AnyTag) and has every
// peer send once. Completion order is policy-dependent, so outcomes are
// digested as a canonically sorted set; the invariant is that each peer is
// matched exactly once with an intact payload.
func phaseWildcards(c *mpi.Comm, sc *script, push func(...uint64), violf func(string, ...any)) {
	r, size := c.Rank(), c.Size()
	n := sc.wildN

	bufs := make([][]byte, size-1)
	reqs := make([]*mpi.Request, size-1)
	for i := range bufs {
		bufs[i] = make([]byte, n)
		reqs[i] = c.Irecv(mpi.AnySource, mpi.AnyTag, bufs[i])
	}

	data := make([]byte, n)
	for d := 0; d < size; d++ {
		if d == r {
			continue
		}
		for i := range data {
			data[i] = patB(r, d, i)
		}
		c.Send(d, 200+r, data)
	}

	type outcome struct {
		src, tag, count int
		hash            uint64
	}
	outs := make([]outcome, 0, size-1)
	for i, req := range reqs {
		stat := c.Wait(req)
		req.Release()
		if stat.Err != nil {
			violf("wildcard recv %d: status error %v", i, stat.Err)
		}
		if stat.Tag != 200+stat.Source || stat.Count != n {
			violf("wildcard recv %d: status (src=%d tag=%d count=%d), want tag=%d count=%d",
				i, stat.Source, stat.Tag, stat.Count, 200+stat.Source, n)
		}
		for bi, b := range bufs[i] {
			if b != patB(stat.Source, r, bi) {
				violf("wildcard recv from %d: payload corrupt at byte %d", stat.Source, bi)
				break
			}
		}
		outs = append(outs, outcome{stat.Source, stat.Tag, stat.Count, hashBytes(bufs[i])})
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].src < outs[j].src })
	seen := map[int]bool{}
	for _, o := range outs {
		if seen[o.src] {
			violf("wildcard: source %d matched twice", o.src)
		}
		seen[o.src] = true
		push(uint64(o.src), uint64(o.tag), uint64(o.count), o.hash)
	}
	for s := 0; s < size; s++ {
		if s != r && !seen[s] {
			violf("wildcard: source %d never matched", s)
		}
	}
}

// phaseCollectives verifies allreduce (sum and max), broadcast, and
// alltoall against host-side recomputation. Chaos plans aimed at collective
// phases (rail flaps mid-collective) land here.
func phaseCollectives(c *mpi.Comm, sc *script, push func(...uint64), violf func(string, ...any)) {
	r, size := c.Rank(), c.Size()

	// Allreduce sum.
	v := make([]int64, sc.vecLen)
	for i := range v {
		v[i] = int64((r + 1) * (i + 3))
	}
	c.AllreduceInt64(v, mpi.Sum)
	for i := range v {
		var want int64
		for q := 0; q < size; q++ {
			want += int64((q + 1) * (i + 3))
		}
		if v[i] != want {
			violf("allreduce sum elem %d: got %d want %d", i, v[i], want)
			break
		}
	}
	push(hashInt64s(v))

	// Allreduce max.
	m := make([]int64, sc.vecLen)
	for i := range m {
		m[i] = int64((r*7+i*13)%101 - 50)
	}
	c.AllreduceInt64(m, mpi.Max)
	for i := range m {
		want := int64(-1 << 62)
		for q := 0; q < size; q++ {
			if x := int64((q*7+i*13)%101 - 50); x > want {
				want = x
			}
		}
		if m[i] != want {
			violf("allreduce max elem %d: got %d want %d", i, m[i], want)
			break
		}
	}
	push(hashInt64s(m))

	// Broadcast from rank 1.
	bb := make([]byte, sc.bcastN)
	if r == 1 {
		for i := range bb {
			bb[i] = patC(i)
		}
	}
	c.BcastN(1, bb, sc.bcastN)
	for i, b := range bb {
		if b != patC(i) {
			violf("bcast: payload corrupt at byte %d", i)
			break
		}
	}
	push(hashBytes(bb))

	// Alltoall.
	blk := sc.a2aBlock
	sbuf := make([]byte, size*blk)
	rbuf := make([]byte, size*blk)
	for d := 0; d < size; d++ {
		for i := 0; i < blk; i++ {
			sbuf[d*blk+i] = patA2A(r, d, i)
		}
	}
	c.Alltoall(sbuf, blk, rbuf)
	for s := 0; s < size; s++ {
		for i := 0; i < blk; i++ {
			if rbuf[s*blk+i] != patA2A(s, r, i) {
				violf("alltoall: block from %d corrupt at byte %d", s, i)
				break
			}
		}
	}
	push(hashBytes(rbuf))

	c.Barrier()
}

// phaseOneSided exercises the RMA window: striped puts and gets across
// fence epochs, accumulates, fetch-and-add, and compare-and-swap. Applied
// atomics must apply exactly once even when their completions are lost to a
// dying rail — a double-applied fetch-add breaks the final counter here.
func phaseOneSided(c *mpi.Comm, sc *script, push func(...uint64), violf func(string, ...any)) {
	r, size := c.Rank(), c.Size()
	buf := make([]byte, sc.winN)
	lower := size * sc.stride
	for i := 0; i < lower; i++ {
		buf[i] = patW(r, i)
	}
	win := c.WinCreate(buf, sc.winN)
	win.Fence()

	// Epoch 1: each rank puts putN bytes into its own region of its right
	// neighbor's window. putN >= the rendezvous threshold, so the policies
	// stripe it.
	target := (r + 1) % size
	pdata := make([]byte, sc.putN)
	for i := range pdata {
		pdata[i] = patP(r, i)
	}
	win.Put(target, r*sc.stride, pdata)
	win.Fence()

	// My window now holds my left neighbor's put in its region; everything
	// else keeps my initial pattern.
	left := (r - 1 + size) % size
	for i := 0; i < lower; i++ {
		want := patW(r, i)
		if reg := i / sc.stride; reg == left && i-reg*sc.stride < sc.putN {
			want = patP(left, i-reg*sc.stride)
		}
		if buf[i] != want {
			violf("window after put epoch: byte %d got %#x want %#x", i, buf[i], want)
			break
		}
	}
	push(hashBytes(buf[:lower]))

	// Epoch 2: get the region a third rank's left neighbor put there and
	// verify the same bytes from the remote side (striped RDMA reads).
	gt := (r + 2) % size
	gsrc := (gt - 1 + size) % size
	gbuf := make([]byte, sc.putN)
	win.Get(gt, gsrc*sc.stride, gbuf)
	win.Fence()
	for i, b := range gbuf {
		if b != patP(gsrc, i) {
			violf("get from %d: byte %d got %#x want %#x", gt, i, b, patP(gsrc, i))
			break
		}
	}
	push(hashBytes(gbuf))

	// Epoch 3: concurrent accumulates and atomics on rank 0's window.
	elemBase := lower / 8
	vals := make([]int64, 16)
	for i := range vals {
		vals[i] = int64(r*100 + i)
	}
	win.AccumulateInt64(0, elemBase, vals, mpi.Sum)

	counterElem := elemBase + 64
	old1 := win.FetchAddInt64(0, counterElem, int64(r+1))
	old2 := win.FetchAddInt64(0, counterElem, int64(r+1))
	if old2 < old1+int64(r+1) {
		violf("fetch-add not monotone: old1=%d old2=%d delta=%d", old1, old2, r+1)
	}

	casElem := counterElem + 2 + r
	if old := win.CompareAndSwapInt64(0, casElem, 0, int64(r+1000)); old != 0 {
		violf("cas elem %d: old=%d want 0", casElem, old)
	}
	win.Fence()

	if r == 0 {
		for i := range vals {
			var want int64
			for q := 0; q < size; q++ {
				want += int64(q*100 + i)
			}
			if got := win.ReadInt64(elemBase + i); got != want {
				violf("accumulate elem %d: got %d want %d", i, got, want)
			}
			push(uint64(win.ReadInt64(elemBase + i)))
		}
		var wantCtr int64
		for q := 0; q < size; q++ {
			wantCtr += 2 * int64(q+1)
		}
		if got := win.ReadInt64(counterElem); got != wantCtr {
			violf("fetch-add counter: got %d want %d (lost or double-applied atomic)", got, wantCtr)
		}
		push(uint64(win.ReadInt64(counterElem)))
		for q := 0; q < size; q++ {
			if got := win.ReadInt64(counterElem + 2 + q); got != int64(q+1000) {
				violf("cas slot for rank %d: got %d want %d", q, got, q+1000)
			}
			push(uint64(win.ReadInt64(counterElem + 2 + q)))
		}
	}
	win.Free()
}

func hashInt64s(v []int64) uint64 {
	h := fnv.New64a()
	var le [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(le[:], uint64(x))
		h.Write(le[:])
	}
	return h.Sum64()
}
