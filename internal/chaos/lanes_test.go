package chaos

import (
	"testing"

	"ib12x/internal/core"
	"ib12x/internal/harness"
	"ib12x/internal/mpi"
	"ib12x/internal/sim"
)

// TestDifferentialOracleLaneColl runs the seeded workload with the
// lane-decomposed collectives across the full 6-policy x 6-fault-plan
// matrix and requires every cell's payload digest to be byte-identical to
// the striped baseline of the same plan. The workload's collective phase
// uses only exact operators (int64 Sum/Max), so lane decomposition — a
// different communication schedule, not different arithmetic — must be
// invisible in the user-visible bytes even while rails die, stall, and
// flap mid-collective. Zero violations also pins World.BufLive()==0 after
// quiesce: RunConformance records any still-referenced payload block as a
// violation.
func TestDifferentialOracleLaneColl(t *testing.T) {
	for _, plan := range faultPlans() {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			ref, err := RunConformance(OracleConfig{Seed: oracleSeed, Policy: core.EvenStriping, Plan: plan})
			if err != nil {
				t.Fatalf("striped baseline under %s: %v", plan.Name, err)
			}
			results, err := harness.MapAll(allPolicies, func(kind core.Kind) (*RunResult, error) {
				return RunConformance(OracleConfig{
					Seed: oracleSeed, Policy: kind, Plan: plan,
					CollAlg: mpi.CollLane,
				})
			})
			if err != nil {
				t.Fatalf("lane matrix under %s: %v", plan.Name, err)
			}
			for i, res := range results {
				for _, v := range res.Violations {
					t.Errorf("lane %v under %s: %s", allPolicies[i], plan.Name, v)
				}
				if res.Digest != ref.Digest {
					t.Errorf("lane digest split under %s: striped=%#x vs lane %s=%#x",
						plan.Name, ref.Digest, res.Policy, res.Digest)
				}
			}
		})
	}
}

// TestLaneCollSerialParallelIdentical pins the harness contract for the
// lane algorithms: the same lane-collective matrix row run on one worker
// and on many must yield bit-identical digests, trace digests, and
// elapsed virtual times cell by cell.
func TestLaneCollSerialParallelIdentical(t *testing.T) {
	plan := faultPlans()[5] // kitchen sink: the most event-heavy plan
	run := func(workers int) []*RunResult {
		res, err := harness.MapN(workers, allPolicies, func(kind core.Kind) (*RunResult, error) {
			return RunConformance(OracleConfig{
				Seed: oracleSeed, Policy: kind, Plan: plan,
				CollAlg: mpi.CollLane,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Digest != p.Digest || s.TraceDigest != p.TraceDigest || s.Elapsed != p.Elapsed {
			t.Errorf("lane %s: serial/parallel diverge: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
				s.Policy, s.Digest, p.Digest, s.TraceDigest, p.TraceDigest, s.Elapsed, p.Elapsed)
		}
	}
}

// TestLaneCollShardedIdentical pins the sharded engine against the serial
// one under lane collectives: a bounded cut of the matrix (the two
// heaviest plans x two policies, 4-node fabric) must be bit-identical —
// payload digest, trace digest, elapsed — at every shard count, with zero
// violations. The full-matrix sharded sweep stays in the striped
// TestShardedSerialIdentical; this leg only has to prove lane steering
// decisions replay identically across shard boundaries.
func TestLaneCollShardedIdentical(t *testing.T) {
	type cell struct {
		plan   *Plan
		policy core.Kind
	}
	plans := []*Plan{
		faultPlans()[5], // kitchen sink
		RailDeath(100*sim.Microsecond, 1, 2),
	}
	var cells []cell
	for _, plan := range plans {
		for _, kind := range []core.Kind{core.EPC, core.EvenStriping} {
			cells = append(cells, cell{plan, kind})
		}
	}
	matrix := func(shards int) []*RunResult {
		t.Helper()
		res, err := harness.Map(cells, func(c cell) (*RunResult, error) {
			return RunConformance(OracleConfig{
				Seed: oracleSeed, Policy: c.policy, Plan: c.plan,
				Nodes: 4, Shards: shards,
				CollAlg: mpi.CollLane,
			})
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res
	}
	serial := matrix(0)
	for _, shards := range []int{1, 2, 4} {
		sharded := matrix(shards)
		for i, res := range sharded {
			ref := serial[i]
			for _, v := range res.Violations {
				t.Errorf("shards=%d lane %v under %s: %s", shards, cells[i].policy, cells[i].plan.Name, v)
			}
			if res.Digest != ref.Digest || res.TraceDigest != ref.TraceDigest || res.Elapsed != ref.Elapsed {
				t.Errorf("shards=%d lane %v under %s diverged from serial: digest %#x/%#x trace %#x/%#x elapsed %v/%v",
					shards, cells[i].policy, cells[i].plan.Name,
					res.Digest, ref.Digest, res.TraceDigest, ref.TraceDigest, res.Elapsed, ref.Elapsed)
			}
		}
	}
}
