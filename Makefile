# Common targets for the ib12x reproduction.

GO ?= go

.PHONY: all build test vet check race fuzz cover soak shardrace bench perf perfstat reproduce extra examples clean

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...
	gofmt -l .

# Full pre-merge gate: vet + the whole suite + the race detector over the
# hot-path packages + the fuzz corpus + the statement-coverage floor.
check: vet test race fuzz cover

race:
	$(GO) test -race ./internal/sim/... ./internal/adi/... ./internal/core/... ./internal/mpi/... ./internal/chaos/... ./internal/buf/... ./internal/harness/... ./internal/regcache/... ./internal/fabric/... ./internal/topo/...
	$(GO) test -race -run 'TestLaneColl|TestEagerLatencyTable' ./internal/bench/

# Self-healing soak: the full chaos conformance matrix with the rail
# reliability layer armed, the health state machine and replay tests, and
# the epoch exactly-once audit — all under the race detector.
soak:
	$(GO) test -race -run 'TestSelfHealing|TestDifferentialOracle|TestGeneratedPlansConverge|TestHealthTimelineReplay|TestFalseSuspectRecovers|TestChaosReproducible|TestReliability|TestHealthStateMachine|TestBackoff|TestEpochCycle|TestDegradedRailTable' ./internal/chaos/ ./internal/adi/ ./internal/ib/ ./internal/bench/

# Sharded-engine soak: the shard group's unit tests and the sharded chaos
# conformance matrix (serial-vs-sharded digest identity at 1/2/4/8 shards)
# under the race detector — the determinism merge rule's standing proof.
shardrace:
	$(GO) test -race -run 'TestGroup|TestShard|TestProcRegistryPrune' ./internal/sim/
	$(GO) test -race -run 'TestShardedSerialIdentical' -timeout 30m ./internal/chaos/

# Each fuzz target gets a bounded live run on top of its checked-in corpus:
# the stripe planners against their coverage invariants, the lane partition
# against its tiling/steering invariants, the bucketed matcher against the
# naive linear reference, the eager-ring header cache against its flat
# MRU-scan reference, the pin-down registration cache against its
# flat-scan LRU reference, and the sharded engine differentially against
# the serial engine.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzEvenStripes -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzWeightedStripes -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzLanePartition -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzMatchOrder -fuzztime=$(FUZZTIME) ./internal/adi
	$(GO) test -run='^$$' -fuzz=FuzzHeaderCache -fuzztime=$(FUZZTIME) ./internal/adi
	$(GO) test -run='^$$' -fuzz=FuzzRegCacheLRU -fuzztime=$(FUZZTIME) ./internal/regcache
	$(GO) test -run='^$$' -fuzz=FuzzShardMerge -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run='^$$' -fuzz=FuzzChunkChecksum -fuzztime=$(FUZZTIME) ./internal/buf
	$(GO) test -run='^$$' -fuzz=FuzzRouteTable -fuzztime=$(FUZZTIME) ./internal/fabric

# Statement-coverage floor over the deterministic-simulation core. The gate
# fails when coverage drops below COVERAGE.txt; re-record the floor with
#   go run ./cmd/covergate -record
# only when a PR legitimately moves it. The profile goes to a temp path so
# the working tree stays clean.
cover:
	@prof=$$(mktemp -t ib12x-cover-XXXXXX.out); \
	trap 'rm -f $$prof' EXIT; \
	$(GO) test -coverprofile=$$prof ./internal/core ./internal/adi ./internal/sim ./internal/chaos ./internal/buf ./internal/harness ./internal/regcache ./internal/fabric ./internal/topo && \
	$(GO) run ./cmd/covergate -profile $$prof -floor COVERAGE.txt

# One testing.B benchmark per paper figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Wall-clock benchmark regression harness: runs BenchmarkFig04/06/07/08,
# writes BENCH_hotpath.json, and fails if Fig06 loses the hot-path win or
# any figure's allocs/op creeps back toward the seed. On a noisy machine
# raise PERF_SAMPLES: the ns gate judges the fastest sample.
PERF_SAMPLES ?= 1
perf:
	$(GO) run ./cmd/perfgate -gate -samples $(PERF_SAMPLES)

# Statistical view of the same benchmarks: each figure runs SAMPLES times
# through the harness pool and prints mean ± stddev ns/op. The JSON report
# goes to a temp file so BENCH_hotpath.json keeps its gating record. The
# warm-path allocation gate keeps registration-cache lookups alloc-free on
# the warm rendezvous path.
SAMPLES ?= 5
perfstat:
	@out=$$(mktemp -t ib12x-perfstat-XXXXXX.json); \
	trap 'rm -f $$out' EXIT; \
	$(GO) run ./cmd/perfgate -samples $(SAMPLES) -o $$out
	$(GO) test -run TestWarmRegisterNoAllocs -count=1 ./internal/regcache

# Regenerate every figure of the paper (takes a few minutes: class-B NAS).
reproduce:
	$(GO) run ./cmd/reproduce -fig all

# The beyond-the-paper supplementary tables.
extra:
	$(GO) run ./cmd/reproduce -fig headline -extra

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stencil
	$(GO) run ./examples/multirail
	$(GO) run ./examples/alltoall
	$(GO) run ./examples/onesided
	$(GO) run ./examples/faults
	$(GO) run ./examples/chaos

clean:
	$(GO) clean ./...
