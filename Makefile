# Common targets for the ib12x reproduction.

GO ?= go

.PHONY: all build test vet check race bench perf reproduce extra examples clean

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...
	gofmt -l .

# Full pre-merge gate: vet + the whole suite + the race detector over the
# hot-path packages (the DES engine and the ADI matching/pooling layer).
check: vet test race

race:
	$(GO) test -race ./internal/sim/... ./internal/adi/...

# One testing.B benchmark per paper figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Wall-clock benchmark regression harness: runs BenchmarkFig04/06/07/08,
# writes BENCH_hotpath.json, and fails if Fig06 loses the hot-path win.
perf:
	$(GO) run ./cmd/perfgate -gate

# Regenerate every figure of the paper (takes a few minutes: class-B NAS).
reproduce:
	$(GO) run ./cmd/reproduce -fig all

# The beyond-the-paper supplementary tables.
extra:
	$(GO) run ./cmd/reproduce -fig headline -extra

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stencil
	$(GO) run ./examples/multirail
	$(GO) run ./examples/alltoall
	$(GO) run ./examples/onesided
	$(GO) run ./examples/faults

clean:
	$(GO) clean ./...
