# Common targets for the ib12x reproduction.

GO ?= go

.PHONY: all build test vet bench reproduce extra examples clean

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...
	gofmt -l .

# One testing.B benchmark per paper figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every figure of the paper (takes a few minutes: class-B NAS).
reproduce:
	$(GO) run ./cmd/reproduce -fig all

# The beyond-the-paper supplementary tables.
extra:
	$(GO) run ./cmd/reproduce -fig headline -extra

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stencil
	$(GO) run ./examples/multirail
	$(GO) run ./examples/alltoall
	$(GO) run ./examples/onesided
	$(GO) run ./examples/faults

clean:
	$(GO) clean ./...
